//! Online-mode baselines: STTrace, SQUISH, SQUISH-E.
//!
//! All three follow the same skeleton (§II-A of the paper): keep a buffer of
//! at most `W` points; when a new point arrives into a full buffer, drop the
//! buffered point with the least human-crafted *importance value*. They
//! differ only in how neighbour values are repaired after a drop:
//!
//! * **STTrace** recomputes the neighbours' values from scratch;
//! * **SQUISH** adds the dropped point's priority onto its neighbours;
//! * **SQUISH-E** carries the maximum dropped priority (π) and recomputes
//!   `π + ε` for the neighbours.

mod squish;
mod squish_e;
mod sttrace;

pub use squish::Squish;
pub use squish_e::SquishE;
pub use sttrace::StTrace;

use trajectory::error::{drop_error, Measure};
use trajectory::OrderedBuffer;

/// Memo token for a deterministic, RNG-free online baseline: its `run`
/// output is a pure function of `(algorithm, measure, pts, w)`, so hashing
/// the name and measure is enough to honour the
/// [`OnlineSimplifier::memo_token`](trajectory::OnlineSimplifier::memo_token)
/// contract.
pub(crate) fn det_memo_token(name: &str, measure: Measure) -> u64 {
    trajcache::mix64(
        trajcache::fnv1a(name.as_bytes()),
        trajcache::fnv1a(format!("{measure:?}").as_bytes()),
    )
}

/// Computes the online importance value of buffered position `pos`:
/// the error its removal would introduce given its *current* buffer
/// neighbours (paper Eq. (1)). Returns `None` for boundary positions.
///
/// [`drop_error`] dispatches on the measure internally (one hoist, then the
/// monomorphized three-point kernel — DESIGN.md §11); each call scores a
/// single drop, so there is no surrounding index loop to hoist out of.
pub(crate) fn neighbour_drop_value(
    buf: &OrderedBuffer,
    measure: Measure,
    pos: usize,
) -> Option<f64> {
    let prev = buf.prev(pos)?;
    let next = buf.next(pos)?;
    Some(drop_error(
        measure,
        &buf.point(prev),
        &buf.point(pos),
        &buf.point(next),
    ))
}

/// Registers the value of the point *before* the just-pushed frontier: once
/// its successor exists it becomes a drop candidate (the first point never
/// does — the problem definition always keeps it).
pub(crate) fn index_new_interior(buf: &mut OrderedBuffer, measure: Measure, frontier: usize) {
    if let Some(interior) = buf.prev(frontier) {
        if let Some(v) = neighbour_drop_value(buf, measure, interior) {
            buf.set_value(interior, v);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use trajectory::error::{simplification_error, Aggregation, Measure};
    use trajectory::{OnlineSimplifier, Point};

    /// Shared conformance checks for any online simplifier.
    pub fn check_online_contract<S: OnlineSimplifier>(algo: &mut S) {
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                let y = if i % 5 == 0 {
                    3.0
                } else {
                    (i % 3) as f64 * 0.4
                };
                Point::new(i as f64, y, i as f64)
            })
            .collect();

        // Budget respected, endpoints kept, indices strictly increasing.
        for w in [2, 3, 10, 25] {
            let kept = algo.run(&pts, w);
            assert!(
                kept.len() <= w,
                "{}: kept {} > w {}",
                algo.name(),
                kept.len(),
                w
            );
            assert_eq!(kept[0], 0, "{}", algo.name());
            assert_eq!(*kept.last().unwrap(), pts.len() - 1, "{}", algo.name());
            assert!(kept.windows(2).all(|p| p[0] < p[1]), "{}", algo.name());
            // The kept set must yield a finite error under every measure.
            for m in Measure::ALL {
                let e = simplification_error(m, &pts, &kept, Aggregation::Max);
                assert!(e.is_finite(), "{} {m}", algo.name());
            }
        }

        // Short streams are kept verbatim.
        let kept = algo.run(&pts[..5], 10);
        assert_eq!(kept, vec![0, 1, 2, 3, 4], "{}", algo.name());

        // Reuse after finish works (begin resets state).
        let kept1 = algo.run(&pts, 8);
        let kept2 = algo.run(&pts, 8);
        assert_eq!(
            kept1,
            kept2,
            "{}: not deterministic across runs",
            algo.name()
        );
    }
}
