//! SQUISH (Muckell et al., 2011): drop the least-important buffered point
//! and *add* its priority onto its two neighbours, carrying accumulated
//! error forward without recomputation.

use super::index_new_interior;
use trajectory::error::Measure;
use trajectory::{OnlineSimplifier, OrderedBuffer, Point};

/// The SQUISH online simplifier, parameterized by error measure.
#[derive(Debug, Clone)]
pub struct Squish {
    measure: Measure,
    buf: OrderedBuffer,
    w: usize,
}

impl Squish {
    /// Creates a SQUISH simplifier scoring points under `measure`.
    pub fn new(measure: Measure) -> Self {
        Squish {
            measure,
            buf: OrderedBuffer::new(),
            w: 0,
        }
    }
}

impl OnlineSimplifier for Squish {
    fn name(&self) -> &'static str {
        "SQUISH"
    }

    fn begin(&mut self, w: usize) {
        assert!(w >= 2, "budget must be at least 2");
        self.buf.clear();
        self.w = w;
    }

    fn observe(&mut self, p: Point) {
        let frontier = self.buf.push_back(p);
        index_new_interior(&mut self.buf, self.measure, frontier);
        if self.buf.len() > self.w {
            let (victim, victim_priority) = self.buf.min().expect("full buffer has candidates");
            let (prev, next) = self.buf.drop_point(victim);
            for nb in [prev, next].into_iter().flatten() {
                if self.buf.is_indexed(nb) {
                    let v = self.buf.value(nb);
                    self.buf.set_value(nb, v + victim_priority);
                }
            }
        }
    }

    fn finish(&mut self) -> Vec<usize> {
        self.buf.live_positions()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(super::det_memo_token(self.name(), self.measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::test_support::check_online_contract;

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_online_contract(&mut Squish::new(m));
        }
    }

    #[test]
    fn priorities_accumulate_monotonically() {
        // After many drops in the same region, surviving neighbours carry
        // inherited priority, making repeated local drops progressively less
        // attractive. Sanity check: the algorithm still terminates within
        // budget and never drops the endpoints.
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new(i as f64, ((i % 7) as f64).sin(), i as f64))
            .collect();
        let kept = Squish::new(Measure::Sed).run(&pts, 10);
        assert_eq!(kept.len(), 10);
        assert_eq!(kept[0], 0);
        assert_eq!(*kept.last().unwrap(), 199);
    }
}
