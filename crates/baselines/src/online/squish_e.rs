//! SQUISH-E (Muckell et al., 2014): like SQUISH, but a neighbour's priority
//! is `π + ε` where π is the *maximum* priority among previously dropped
//! neighbours (carried forward) and ε is the recomputed drop error.

use super::{index_new_interior, neighbour_drop_value};
use trajectory::error::Measure;
use trajectory::{OnlineSimplifier, OrderedBuffer, Point};

/// The SQUISH-E online simplifier (the SQUISH-E(λ) variant minimizing error
/// under a compression-ratio budget, which is the Min-Error setting).
#[derive(Debug, Clone)]
pub struct SquishE {
    measure: Measure,
    buf: OrderedBuffer,
    /// Carried maximum dropped-neighbour priority per stream position.
    pi: Vec<f64>,
    w: usize,
}

impl SquishE {
    /// Creates a SQUISH-E simplifier scoring points under `measure`.
    pub fn new(measure: Measure) -> Self {
        SquishE {
            measure,
            buf: OrderedBuffer::new(),
            pi: Vec::new(),
            w: 0,
        }
    }

    fn reprioritize(&mut self, pos: usize, dropped_priority: f64) {
        self.pi[pos] = self.pi[pos].max(dropped_priority);
        if self.buf.is_indexed(pos) {
            if let Some(eps) = neighbour_drop_value(&self.buf, self.measure, pos) {
                self.buf.set_value(pos, self.pi[pos] + eps);
            }
        }
    }
}

impl OnlineSimplifier for SquishE {
    fn name(&self) -> &'static str {
        "SQUISH-E"
    }

    fn begin(&mut self, w: usize) {
        assert!(w >= 2, "budget must be at least 2");
        self.buf.clear();
        self.pi.clear();
        self.w = w;
    }

    fn observe(&mut self, p: Point) {
        let frontier = self.buf.push_back(p);
        self.pi.push(0.0);
        index_new_interior(&mut self.buf, self.measure, frontier);
        if let Some(interior) = self.buf.prev(frontier) {
            // A freshly indexed interior point starts at π + ε.
            if self.buf.is_indexed(interior) && self.pi[interior] > 0.0 {
                let v = self.buf.value(interior);
                self.buf.set_value(interior, self.pi[interior] + v);
            }
        }
        if self.buf.len() > self.w {
            let (victim, victim_priority) = self.buf.min().expect("full buffer has candidates");
            let (prev, next) = self.buf.drop_point(victim);
            for nb in [prev, next].into_iter().flatten() {
                self.reprioritize(nb, victim_priority);
            }
        }
    }

    fn finish(&mut self) -> Vec<usize> {
        self.buf.live_positions()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(super::det_memo_token(self.name(), self.measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::test_support::check_online_contract;

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_online_contract(&mut SquishE::new(m));
        }
    }

    #[test]
    fn pi_carries_max_not_sum() {
        // Construct a stream where one region suffers many drops; SQUISH-E's
        // π is a max, so priorities stay bounded by (max single drop error +
        // current ε) rather than growing without bound as SQUISH's do.
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i as f64, if i % 2 == 0 { 0.0 } else { 0.5 }, i as f64))
            .collect();
        let mut algo = SquishE::new(Measure::Ped);
        let kept = algo.run(&pts, 6);
        assert_eq!(kept.len(), 6);
        // All carried π values are bounded by the worst single-drop error,
        // which on this zigzag is at most ~0.5 plus accumulation of the same
        // magnitude — i.e. no runaway growth past a small constant.
        assert!(
            algo.pi.iter().all(|&v| v < 5.0),
            "π grew unexpectedly: {:?}",
            algo.pi
        );
    }
}
