//! STTrace (Potamias et al., 2006): drop the least-important buffered point
//! and *recompute* the importance of its neighbours.

use super::{index_new_interior, neighbour_drop_value};
use trajectory::error::Measure;
use trajectory::{OnlineSimplifier, OrderedBuffer, Point};

/// The STTrace online simplifier, parameterized by error measure.
#[derive(Debug, Clone)]
pub struct StTrace {
    measure: Measure,
    buf: OrderedBuffer,
    w: usize,
}

impl StTrace {
    /// Creates an STTrace simplifier scoring points under `measure`.
    pub fn new(measure: Measure) -> Self {
        StTrace {
            measure,
            buf: OrderedBuffer::new(),
            w: 0,
        }
    }

    fn refresh(&mut self, pos: Option<usize>) {
        // Recompute a neighbour's value from its current neighbours; the
        // frontier (no successor yet) and the first point stay out of the
        // candidate index.
        if let Some(pos) = pos {
            if self.buf.is_indexed(pos) {
                if let Some(v) = neighbour_drop_value(&self.buf, self.measure, pos) {
                    self.buf.set_value(pos, v);
                }
            }
        }
    }
}

impl OnlineSimplifier for StTrace {
    fn name(&self) -> &'static str {
        "STTrace"
    }

    fn begin(&mut self, w: usize) {
        assert!(w >= 2, "budget must be at least 2");
        self.buf.clear();
        self.w = w;
    }

    fn observe(&mut self, p: Point) {
        let frontier = self.buf.push_back(p);
        index_new_interior(&mut self.buf, self.measure, frontier);
        if self.buf.len() > self.w {
            let (victim, _) = self.buf.min().expect("full buffer has candidates");
            let (prev, next) = self.buf.drop_point(victim);
            self.refresh(prev);
            self.refresh(next);
        }
    }

    fn finish(&mut self) -> Vec<usize> {
        self.buf.live_positions()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(super::det_memo_token(self.name(), self.measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::test_support::check_online_contract;

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_online_contract(&mut StTrace::new(m));
        }
    }

    #[test]
    fn straight_line_drops_are_free() {
        // On a perfectly straight constant-speed stream any kept subset is
        // exact, so STTrace must produce zero error.
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new(i as f64, i as f64, i as f64))
            .collect();
        let kept = StTrace::new(Measure::Sed).run(&pts, 5);
        let e = trajectory::error::simplification_error(
            Measure::Sed,
            &pts,
            &kept,
            trajectory::error::Aggregation::Max,
        );
        assert!(e < 1e-9, "{e}");
    }

    #[test]
    fn keeps_salient_corner() {
        // An L-shaped path: the corner point is the most important interior
        // point and should survive a tight budget.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new(i as f64, 0.0, i as f64));
        }
        for i in 1..10 {
            pts.push(Point::new(9.0, i as f64, (9 + i) as f64));
        }
        let kept = StTrace::new(Measure::Ped).run(&pts, 3);
        assert!(kept.contains(&9), "corner index 9 not kept: {kept:?}");
    }
}
