//! `baselines` — every existing Min-Error trajectory simplification
//! algorithm the RLTS paper compares against (§VI-A), implemented from
//! scratch:
//!
//! **Online** (fixed buffer, drop-least-important):
//! [`StTrace`], [`Squish`], [`SquishE`] — `O((n−W) log W)`.
//!
//! **Batch**:
//! [`Bellman`] (exact DP, cubic), [`TopDown`] (budgeted Douglas–Peucker,
//! `O(Wn)`), [`BottomUp`] (greedy merge, `O((n−W)(n′+log n))`),
//! [`SpanSearch`] (DAD-specific), plus a [`Uniform`] sanity floor.
//!
//! All algorithms implement the [`trajectory::BatchSimplifier`] /
//! [`trajectory::OnlineSimplifier`] traits, so they are interchangeable with
//! the RLTS family in the experiment harness.
//!
//! # Example
//!
//! ```
//! use baselines::{BottomUp, Squish};
//! use trajectory::{BatchSimplifier, OnlineSimplifier, Point};
//! use trajectory::error::Measure;
//!
//! let pts: Vec<Point> = (0..50)
//!     .map(|i| Point::new(i as f64, ((i as f64) * 0.5).sin(), i as f64))
//!     .collect();
//! let batch_kept = BottomUp::new(Measure::Sed).simplify(&pts, 10);
//! let online_kept = Squish::new(Measure::Sed).run(&pts, 10);
//! assert!(batch_kept.len() <= 10 && online_kept.len() <= 10);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod dual;
pub mod online;

pub use batch::{Bellman, BottomUp, SpanSearch, TopDown, Uniform};
pub use dual::{BoundedBottomUp, DeadReckoning, MinSizeSearch, OpeningWindow, Split};
pub use online::{Squish, SquishE, StTrace};
