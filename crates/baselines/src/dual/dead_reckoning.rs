//! Dead Reckoning (paper §II-A, [18]): the online error-bounded technique
//! that predicts the object's next location from the last kept point's
//! position and velocity and only keeps a point when it deviates from the
//! prediction by more than the bound.
//!
//! Unlike Opening-Window, each decision costs `O(1)` — the classic choice
//! for extremely constrained sensors — at the price of keeping more points
//! for the same bound.
//!
//! **Bound semantics caveat**: Dead Reckoning bounds each skipped point's
//! deviation from the constant-velocity *prediction* at decision time. That
//! is the guarantee the original technique offers; the resulting SED against
//! the kept polyline is usually similar but is **not** strictly bounded by
//! ε (the other dual algorithms do bound the chosen measure exactly).

use trajectory::{ErrorBoundedSimplifier, Point};

/// The Dead-Reckoning error-bounded simplifier (SED-style positional bound).
#[derive(Debug, Clone, Default)]
pub struct DeadReckoning;

impl DeadReckoning {
    /// Creates a Dead-Reckoning simplifier.
    pub fn new() -> Self {
        DeadReckoning
    }
}

impl ErrorBoundedSimplifier for DeadReckoning {
    fn name(&self) -> &'static str {
        "Dead-Reckoning"
    }

    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize> {
        assert!(epsilon >= 0.0, "error bound must be non-negative");
        assert!(pts.len() >= 2, "need at least two points");
        let n = pts.len();
        let mut kept = vec![0usize];
        // Velocity estimate at the last kept point (from its successor,
        // which a sensor observes before deciding).
        let mut anchor = 0usize;
        let mut vx;
        let mut vy;
        {
            let dt = (pts[1].t - pts[0].t).max(f64::MIN_POSITIVE);
            vx = (pts[1].x - pts[0].x) / dt;
            vy = (pts[1].y - pts[0].y) / dt;
        }
        for i in 2..n - 1 {
            let dt = pts[i].t - pts[anchor].t;
            let px = pts[anchor].x + vx * dt;
            let py = pts[anchor].y + vy * dt;
            let deviation = (pts[i].x - px).hypot(pts[i].y - py);
            if deviation > epsilon {
                // Keep this point and re-estimate velocity from its successor.
                kept.push(i);
                anchor = i;
                let dt_next = (pts[i + 1].t - pts[i].t).max(f64::MIN_POSITIVE);
                vx = (pts[i + 1].x - pts[i].x) / dt_next;
                vy = (pts[i + 1].y - pts[i].y) / dt_next;
            }
        }
        kept.push(n - 1);
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::test_support::hilly;

    #[test]
    fn constant_velocity_keeps_endpoints_only() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new(i as f64 * 2.0, i as f64, i as f64))
            .collect();
        let kept = DeadReckoning::new().simplify_bounded(&pts, 0.5);
        assert_eq!(kept, vec![0, 29]);
    }

    #[test]
    fn turn_breaks_the_prediction() {
        // Straight east, then straight north: the prediction fails right
        // after the corner.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new(i as f64, 0.0, i as f64));
        }
        for i in 1..10 {
            pts.push(Point::new(9.0, i as f64, (9 + i) as f64));
        }
        let kept = DeadReckoning::new().simplify_bounded(&pts, 1.0);
        assert!(kept.len() > 2);
        // A kept point appears within two samples of the corner (index 9).
        assert!(kept.iter().any(|&i| (9..=11).contains(&i)), "{kept:?}");
    }

    #[test]
    fn tighter_bound_keeps_more_points() {
        let pts = hilly(80);
        let tight = DeadReckoning::new().simplify_bounded(&pts, 0.5);
        let loose = DeadReckoning::new().simplify_bounded(&pts, 5.0);
        assert!(
            tight.len() >= loose.len(),
            "{} < {}",
            tight.len(),
            loose.len()
        );
        assert_eq!(tight[0], 0);
        assert_eq!(*tight.last().unwrap(), 79);
    }

    #[test]
    fn prediction_deviation_bounds_kept_spacing_errors() {
        // Every *skipped* point deviated from the constant-velocity
        // prediction by at most ε at decision time — verify directly.
        let pts = hilly(60);
        let eps = 2.0;
        let kept = DeadReckoning::new().simplify_bounded(&pts, eps);
        let kept_set: std::collections::HashSet<usize> = kept.iter().copied().collect();
        let mut anchor = 0usize;
        let mut v = {
            let dt = (pts[1].t - pts[0].t).max(f64::MIN_POSITIVE);
            ((pts[1].x - pts[0].x) / dt, (pts[1].y - pts[0].y) / dt)
        };
        for i in 2..pts.len() - 1 {
            if kept_set.contains(&i) {
                anchor = i;
                let dt = (pts[i + 1].t - pts[i].t).max(f64::MIN_POSITIVE);
                v = (
                    (pts[i + 1].x - pts[i].x) / dt,
                    (pts[i + 1].y - pts[i].y) / dt,
                );
                continue;
            }
            let dt = pts[i].t - pts[anchor].t;
            let px = pts[anchor].x + v.0 * dt;
            let py = pts[anchor].y + v.1 * dt;
            let d = (pts[i].x - px).hypot(pts[i].y - py);
            assert!(d <= eps + 1e-9, "skipped point {i} deviated by {d}");
        }
    }
}

trajectory::impl_simplifier_for_bounded!(DeadReckoning);
