//! The dual **Min-Size** problem (paper §II-A/§II-B): keep as few points as
//! possible subject to an error bound ε.
//!
//! The paper excludes these from its Min-Error comparison (adapting them via
//! binary search costs `O(n² log n)`+), but they complete the library for
//! users who think in error budgets rather than storage budgets:
//!
//! * [`OpeningWindow`] — the classic online error-bounded algorithm;
//! * [`DeadReckoning`] — constant-velocity prediction with an O(1) decision
//!   per point (\[18\] in the paper);
//! * [`Split`] — recursive Douglas–Peucker splitting down to the bound;
//! * [`BoundedBottomUp`] — greedy merging while the bound holds;
//! * [`MinSizeSearch`] — the binary-search adaptation of any Min-Error
//!   batch simplifier that the paper mentions (and dismisses as slow).

mod bounded_bottom_up;
mod dead_reckoning;
mod min_size_search;
mod opening_window;
mod split;

pub use bounded_bottom_up::BoundedBottomUp;
pub use dead_reckoning::DeadReckoning;
pub use min_size_search::MinSizeSearch;
pub use opening_window::OpeningWindow;
pub use split::Split;

#[cfg(test)]
pub(crate) mod test_support {
    use trajectory::error::{simplification_error, Aggregation, Measure};
    use trajectory::{ErrorBoundedSimplifier, Point};

    pub fn hilly(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(f, (f * 0.6).sin() * 4.0 + (f * 0.09).cos() * 7.0, f)
            })
            .collect()
    }

    /// Shared conformance checks for error-bounded simplifiers.
    pub fn check_bounded_contract<S: ErrorBoundedSimplifier>(algo: &S, measure: Measure) {
        let pts = hilly(70);
        let mut last_len = usize::MAX;
        for eps in [0.5, 2.0, 8.0] {
            let kept = algo.simplify_bounded(&pts, eps);
            assert_eq!(kept[0], 0, "{}", algo.name());
            assert_eq!(*kept.last().unwrap(), pts.len() - 1, "{}", algo.name());
            assert!(kept.windows(2).all(|p| p[0] < p[1]), "{}", algo.name());
            let e = simplification_error(measure, &pts, &kept, Aggregation::Max);
            assert!(e <= eps + 1e-9, "{} eps={eps}: error {e}", algo.name());
            // Looser bounds keep (weakly) fewer points.
            assert!(kept.len() <= last_len, "{} eps={eps}", algo.name());
            last_len = kept.len();
        }
        // Zero tolerance keeps everything that carries information; on a
        // generic-position input that is every point.
        let kept = algo.simplify_bounded(&pts, 0.0);
        let e = simplification_error(measure, &pts, &kept, Aggregation::Max);
        assert!(e <= 1e-9, "{}", algo.name());
    }
}
