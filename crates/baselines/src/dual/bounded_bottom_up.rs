//! Bounded Bottom-Up: greedily merge the cheapest neighbouring segments
//! while the resulting simplification error stays within the bound.

use std::collections::BTreeSet;
use trajectory::error::Measure;
use trajectory::{ErrorBook, ErrorBoundedSimplifier, Point};

/// The error-bounded Bottom-Up simplifier.
#[derive(Debug, Clone)]
pub struct BoundedBottomUp {
    measure: Measure,
}

impl BoundedBottomUp {
    /// Creates a bounded Bottom-Up simplifier under `measure`.
    pub fn new(measure: Measure) -> Self {
        BoundedBottomUp { measure }
    }
}

impl ErrorBoundedSimplifier for BoundedBottomUp {
    fn name(&self) -> &'static str {
        "Bounded-Bottom-Up"
    }

    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize> {
        assert!(epsilon >= 0.0, "error bound must be non-negative");
        assert!(pts.len() >= 2, "need at least two points");
        let n = pts.len();
        let mut book = ErrorBook::with_all(pts, self.measure);
        let mut candidates: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut cost = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // the index is the point id
        for j in 1..n - 1 {
            let c = book.merge_cost(j);
            cost[j] = c;
            candidates.insert((c.to_bits(), j as u32));
        }
        while let Some(&(bits, j)) = candidates.iter().next() {
            let c = f64::from_bits(bits);
            if c > epsilon {
                break; // the cheapest drop would already break the bound
            }
            candidates.remove(&(bits, j));
            let j = j as usize;
            let prev = book.prev_kept(j).expect("interior");
            let next = book.next_kept(j).expect("interior");
            book.drop(j);
            for nb in [prev, next] {
                if nb != 0 && nb != n - 1 {
                    candidates.remove(&(cost[nb].to_bits(), nb as u32));
                    let c = book.merge_cost(nb);
                    cost[nb] = c;
                    candidates.insert((c.to_bits(), nb as u32));
                }
            }
        }
        book.kept_indices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::test_support::{check_bounded_contract, hilly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_bounded_contract(&BoundedBottomUp::new(m), m);
        }
    }

    #[test]
    fn infinite_bound_keeps_only_endpoints() {
        let pts = hilly(40);
        let kept = BoundedBottomUp::new(Measure::Sed).simplify_bounded(&pts, f64::MAX);
        assert_eq!(kept, vec![0, 39]);
    }

    #[test]
    fn merge_cost_is_conservative_for_the_bound() {
        // The merge cost equals the new segment's own error, so the global
        // max never exceeds the largest accepted cost ≤ ε.
        let pts = hilly(80);
        for eps in [0.5, 2.5, 10.0] {
            let kept = BoundedBottomUp::new(Measure::Sed).simplify_bounded(&pts, eps);
            let e = simplification_error(Measure::Sed, &pts, &kept, Aggregation::Max);
            assert!(e <= eps + 1e-9, "eps {eps}: {e}");
        }
    }
}

trajectory::impl_simplifier_for_bounded!(BoundedBottomUp);
