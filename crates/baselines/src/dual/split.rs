//! Split: recursive Douglas–Peucker simplification down to an error bound —
//! the batch-mode counterpart of Opening-Window.

use trajectory::error::{Measure, TrajView};
use trajectory::{ErrorBoundedSimplifier, Point};

/// The Split (recursive Douglas–Peucker) error-bounded simplifier.
#[derive(Debug, Clone)]
pub struct Split {
    measure: Measure,
}

impl Split {
    /// Creates a Split simplifier under `measure`.
    pub fn new(measure: Measure) -> Self {
        Split { measure }
    }

    /// Worst point error and split index inside `(s, e)` — the shared
    /// monomorphized worst-unit kernel behind one dispatch.
    fn worst(&self, pts: &[Point], s: usize, e: usize) -> Option<(f64, usize)> {
        if e <= s + 1 {
            return None;
        }
        TrajView::anchor(pts, s, e).worst_for(self.measure)
    }

    fn recurse(&self, pts: &[Point], s: usize, e: usize, epsilon: f64, out: &mut Vec<usize>) {
        if let Some((err, split)) = self.worst(pts, s, e) {
            if err > epsilon {
                self.recurse(pts, s, split, epsilon, out);
                out.push(split);
                self.recurse(pts, split, e, epsilon, out);
            }
        }
    }
}

impl ErrorBoundedSimplifier for Split {
    fn name(&self) -> &'static str {
        "Split"
    }

    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize> {
        assert!(epsilon >= 0.0, "error bound must be non-negative");
        assert!(pts.len() >= 2, "need at least two points");
        let mut kept = vec![0usize];
        self.recurse(pts, 0, pts.len() - 1, epsilon, &mut kept);
        kept.push(pts.len() - 1);
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::test_support::{check_bounded_contract, hilly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_bounded_contract(&Split::new(m), m);
        }
    }

    #[test]
    fn spike_forces_its_own_point() {
        let pts: Vec<Point> = (0..11)
            .map(|i| Point::new(i as f64, if i == 5 { 9.0 } else { 0.0 }, i as f64))
            .collect();
        let kept = Split::new(Measure::Ped).simplify_bounded(&pts, 1.0);
        assert!(kept.contains(&5), "{kept:?}");
    }

    #[test]
    fn split_usually_keeps_more_than_optimal_error_needs() {
        // Split guarantees the bound; sanity-check that against the bound
        // achieved by the DP at the same size.
        use crate::batch::Bellman;
        use trajectory::BatchSimplifier;
        let pts = hilly(60);
        let eps = 2.0;
        let kept = Split::new(Measure::Sed).simplify_bounded(&pts, eps);
        let dp = Bellman::new(Measure::Sed).simplify(&pts, kept.len());
        let e_split = simplification_error(Measure::Sed, &pts, &kept, Aggregation::Max);
        let e_dp = simplification_error(Measure::Sed, &pts, &dp, Aggregation::Max);
        assert!(e_dp <= e_split + 1e-9);
    }
}

trajectory::impl_simplifier_for_bounded!(Split);
