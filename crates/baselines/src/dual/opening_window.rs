//! Opening Window: the classic online error-bounded simplifier. Anchor at
//! the last kept point; extend the window until the anchor segment to the
//! incoming point violates the bound for some covered point; then keep the
//! previous point and re-anchor there.

use trajectory::error::{range_max_error, Measure};
use trajectory::{ErrorBoundedSimplifier, Point};

/// The Opening-Window error-bounded simplifier, parameterized by measure.
#[derive(Debug, Clone)]
pub struct OpeningWindow {
    measure: Measure,
}

impl OpeningWindow {
    /// Creates an Opening-Window simplifier under `measure`.
    pub fn new(measure: Measure) -> Self {
        OpeningWindow { measure }
    }
}

impl ErrorBoundedSimplifier for OpeningWindow {
    fn name(&self) -> &'static str {
        "Opening-Window"
    }

    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize> {
        assert!(epsilon >= 0.0, "error bound must be non-negative");
        assert!(pts.len() >= 2, "need at least two points");
        let n = pts.len();
        let mut kept = vec![0usize];
        let mut anchor = 0usize;
        let mut e = anchor + 1;
        // Dispatch on the measure once, outside the whole stream sweep.
        trajectory::dispatch!(self.measure, M => {
            while e < n {
                // Would the anchor segment (anchor, e) violate the bound?
                let violates = e > anchor + 1 && range_max_error::<M>(pts, anchor, e) > epsilon;
                if violates {
                    // Keep the previous point and restart the window there.
                    kept.push(e - 1);
                    anchor = e - 1;
                }
                e += 1;
            }
        });
        if *kept.last().unwrap() != n - 1 {
            kept.push(n - 1);
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::test_support::{check_bounded_contract, hilly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_bounded_contract(&OpeningWindow::new(m), m);
        }
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let pts: Vec<Point> = (0..25)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect();
        let kept = OpeningWindow::new(Measure::Sed).simplify_bounded(&pts, 0.1);
        assert_eq!(kept, vec![0, 24]);
    }

    #[test]
    fn bound_is_respected_tightly() {
        let pts = hilly(100);
        for eps in [1.0, 3.0] {
            let kept = OpeningWindow::new(Measure::Ped).simplify_bounded(&pts, eps);
            let e = simplification_error(Measure::Ped, &pts, &kept, Aggregation::Max);
            assert!(e <= eps + 1e-9, "eps {eps}: {e}");
            // The bound should actually be exploited: a loose bound keeps
            // far fewer points than the input.
            assert!(kept.len() < pts.len() / 2, "eps {eps}: kept {}", kept.len());
        }
    }
}

trajectory::impl_simplifier_for_bounded!(OpeningWindow);
