//! The binary-search adaptation of a Min-Error simplifier to the Min-Size
//! problem that the paper mentions (§VI-A) — and excludes from its
//! comparisons because the `log n` outer loop makes it expensive. Provided
//! here for completeness and as the reference for the dual experiments.

use trajectory::error::{simplification_error, Aggregation, Measure};
use trajectory::{BatchSimplifier, ErrorBoundedSimplifier, Point};

/// Wraps any Min-Error batch simplifier into an error-bounded one by binary
/// searching the smallest budget `W` whose result meets the bound.
pub struct MinSizeSearch<S> {
    inner: S,
    measure: Measure,
}

impl<S: BatchSimplifier> MinSizeSearch<S> {
    /// Wraps `inner`, scoring candidate budgets under `measure`.
    pub fn new(inner: S, measure: Measure) -> Self {
        MinSizeSearch { inner, measure }
    }
}

impl<S: BatchSimplifier> ErrorBoundedSimplifier for MinSizeSearch<S> {
    fn name(&self) -> &'static str {
        "Min-Size-Search"
    }

    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize> {
        assert!(epsilon >= 0.0, "error bound must be non-negative");
        assert!(pts.len() >= 2, "need at least two points");
        let n = pts.len();
        let feasible = |this: &Self, w: usize| -> Option<Vec<usize>> {
            let kept = this.inner.simplify(pts, w);
            let e = simplification_error(this.measure, pts, &kept, Aggregation::Max);
            (e <= epsilon).then_some(kept)
        };
        // The full trajectory is always feasible (zero error).
        let mut best: Vec<usize> = (0..n).collect();
        let (mut lo, mut hi) = (2usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match feasible(self, mid) {
                Some(kept) => {
                    best = kept;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        // NOTE: error is not strictly monotone in W for greedy inner
        // algorithms, so the binary search is a heuristic for them (exact
        // for Bellman); `best` always satisfies the bound regardless.
        best
    }
}

// Generic over the inner simplifier, so the macro (concrete types only)
// does not apply.
impl<S: BatchSimplifier> trajectory::Simplifier for MinSizeSearch<S> {
    fn name(&self) -> &'static str {
        ErrorBoundedSimplifier::name(self)
    }

    fn supports(&self, budget: &trajectory::Budget) -> bool {
        matches!(budget, trajectory::Budget::Error(_))
    }

    fn simplify(&self, pts: &[Point], budget: trajectory::Budget) -> trajectory::Simplification {
        match budget {
            trajectory::Budget::Error(epsilon) => {
                trajectory::Simplification::new(pts.len(), self.simplify_bounded(pts, epsilon))
            }
            other => {
                panic!("Min-Size-Search is a Min-Size algorithm; unsupported budget {other:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Bellman, BottomUp};
    use crate::dual::test_support::hilly;
    use crate::dual::Split;

    #[test]
    fn bound_always_satisfied() {
        let pts = hilly(50);
        for eps in [0.5, 2.0, 8.0] {
            let algo = MinSizeSearch::new(BottomUp::new(Measure::Sed), Measure::Sed);
            let kept = algo.simplify_bounded(&pts, eps);
            let e = simplification_error(Measure::Sed, &pts, &kept, Aggregation::Max);
            assert!(e <= eps + 1e-9, "eps {eps}: {e}");
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 49);
        }
    }

    #[test]
    fn with_bellman_it_is_no_larger_than_split() {
        // Binary search over the exact DP gives the optimal Min-Size answer
        // (error is monotone in W for the optimum); Split can only match or
        // keep more points.
        let pts = hilly(40);
        for eps in [1.0, 4.0] {
            let exact = MinSizeSearch::new(Bellman::new(Measure::Sed), Measure::Sed);
            let optimal = exact.simplify_bounded(&pts, eps);
            let split = Split::new(Measure::Sed).simplify_bounded(&pts, eps);
            assert!(
                optimal.len() <= split.len(),
                "eps {eps}: {} > {}",
                optimal.len(),
                split.len()
            );
        }
    }

    #[test]
    fn zero_bound_keeps_everything_interesting() {
        let pts = hilly(30);
        let algo = MinSizeSearch::new(Bellman::new(Measure::Ped), Measure::Ped);
        let kept = algo.simplify_bounded(&pts, 0.0);
        let e = simplification_error(Measure::Ped, &pts, &kept, Aggregation::Max);
        assert!(e <= 1e-12);
    }
}
