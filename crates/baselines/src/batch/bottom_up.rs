//! Bottom-Up: start from the full trajectory and repeatedly drop the point
//! whose removal introduces the smallest error (paper Eq. (12) merge cost),
//! until only `W` points remain. `O((n−W)(n′ + log n))` time — the strongest
//! approximate baseline in the paper's batch experiments.
//!
//! All segment scoring happens inside [`ErrorBook`], which drives the
//! monomorphized range kernels through the zero-copy view API
//! (DESIGN.md §11); nothing here touches per-point errors directly.

use std::collections::BTreeSet;
use trajectory::error::Measure;
use trajectory::{BatchSimplifier, ErrorBook, Point};

/// The Bottom-Up batch simplifier, parameterized by error measure.
#[derive(Debug, Clone)]
pub struct BottomUp {
    measure: Measure,
}

impl BottomUp {
    /// Creates a Bottom-Up simplifier under `measure`.
    pub fn new(measure: Measure) -> Self {
        BottomUp { measure }
    }
}

impl BatchSimplifier for BottomUp {
    fn name(&self) -> &'static str {
        "Bottom-Up"
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        assert!(w >= 2, "budget must be at least 2");
        let n = pts.len();
        if n <= w {
            return (0..n).collect();
        }
        let mut book = ErrorBook::with_all(pts, self.measure);
        // Ordered candidate set of (merge-cost bits, interior index).
        let mut candidates: BTreeSet<(u64, u32)> = BTreeSet::new();
        let mut cost = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)] // the index is the point id
        for j in 1..n - 1 {
            let c = book.merge_cost(j);
            cost[j] = c;
            candidates.insert((c.to_bits(), j as u32));
        }
        while book.kept_len() > w {
            let &(bits, j) = candidates
                .iter()
                .next()
                .expect("kept > w implies interior points");
            candidates.remove(&(bits, j));
            let j = j as usize;
            let prev = book.prev_kept(j).expect("interior candidate has prev");
            let next = book.next_kept(j).expect("interior candidate has next");
            book.drop(j);
            // Only the two ex-neighbours' merge costs change.
            for nb in [prev, next] {
                if nb == 0 || nb == n - 1 {
                    continue;
                }
                candidates.remove(&(cost[nb].to_bits(), nb as u32));
                let c = book.merge_cost(nb);
                cost[nb] = c;
                candidates.insert((c.to_bits(), nb as u32));
            }
        }
        book.kept_indices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_support::{check_batch_contract, wiggly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_batch_contract(&BottomUp::new(m), m);
        }
    }

    #[test]
    fn keeps_exactly_w_points() {
        let pts = wiggly(50);
        let kept = BottomUp::new(Measure::Sed).simplify(&pts, 12);
        assert_eq!(kept.len(), 12);
    }

    #[test]
    fn drops_redundant_points_first() {
        // Straight run followed by a sharp corner: the corner survives.
        let mut pts = Vec::new();
        for i in 0..12 {
            pts.push(Point::new(i as f64, 0.0, i as f64));
        }
        for i in 1..12 {
            pts.push(Point::new(11.0, i as f64, (11 + i) as f64));
        }
        let kept = BottomUp::new(Measure::Ped).simplify(&pts, 3);
        assert_eq!(kept, vec![0, 11, 22]);
    }

    #[test]
    fn competitive_with_top_down() {
        // Bottom-Up generally beats Top-Down on max error in the paper;
        // require it to be at least not catastrophically worse on average.
        use crate::batch::TopDown;
        let pts = wiggly(120);
        let mut bu_total = 0.0;
        let mut td_total = 0.0;
        for w in [12, 24, 48] {
            let bu = BottomUp::new(Measure::Sed).simplify(&pts, w);
            let td = TopDown::new(Measure::Sed).simplify(&pts, w);
            bu_total += simplification_error(Measure::Sed, &pts, &bu, Aggregation::Max);
            td_total += simplification_error(Measure::Sed, &pts, &td, Aggregation::Max);
        }
        assert!(
            bu_total <= td_total * 2.0,
            "bottom-up {bu_total} vs top-down {td_total}"
        );
    }
}

trajectory::impl_simplifier_for_batch!(BottomUp);
