//! Top-Down: the budgeted Douglas–Peucker variant. Start with the endpoint
//! segment and repeatedly split the segment with the largest error at its
//! worst point until `W` points are kept.
//!
//! Two implementations with identical output:
//!
//! * [`TopDown::new`] — the paper's `O(W·n)` algorithm ([39]): every round
//!   rescans all current segments for the globally worst point. This is the
//!   implementation whose running time the paper reports (slowest batch
//!   baseline by ~2 orders of magnitude, Fig 5b/6b).
//! * [`TopDown::fast`] — a heap-based refinement that only rescans the two
//!   halves of the segment just split (`O(n log n)`-ish in practice), kept
//!   for the implementation-choice ablation in DESIGN.md §5.

use std::collections::BinaryHeap;
use trajectory::error::{Measure, TrajView};
use trajectory::{BatchSimplifier, Point};

/// Which Top-Down implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Full rescan per round (the paper's `O(W·n)` version).
    Rescan,
    /// Heap of segments with cached worst points.
    Heap,
}

/// The Top-Down batch simplifier, parameterized by error measure.
#[derive(Debug, Clone)]
pub struct TopDown {
    measure: Measure,
    strategy: Strategy,
}

impl TopDown {
    /// Creates the paper-faithful `O(W·n)` Top-Down under `measure`.
    pub fn new(measure: Measure) -> Self {
        TopDown {
            measure,
            strategy: Strategy::Rescan,
        }
    }

    /// Creates the heap-accelerated Top-Down (identical output, much
    /// faster; not what the paper benchmarks).
    pub fn fast(measure: Measure) -> Self {
        TopDown {
            measure,
            strategy: Strategy::Heap,
        }
    }

    /// Max error over range `(s, e)` plus the best split point (an interior
    /// index strictly inside the range), or `None` if the range has no
    /// interior. One dispatch, then the monomorphized worst-unit kernel.
    fn worst(&self, pts: &[Point], s: usize, e: usize) -> Option<(f64, usize)> {
        if e <= s + 1 {
            return None;
        }
        TrajView::anchor(pts, s, e).worst_for(self.measure)
    }

    fn simplify_rescan(&self, pts: &[Point], w: usize) -> Vec<usize> {
        let n = pts.len();
        let mut kept = vec![0, n - 1];
        while kept.len() < w {
            // One full pass over all current segments (the O(n) round).
            let mut round_best: Option<(f64, usize)> = None;
            for pair in kept.windows(2) {
                if let Some((err, split)) = self.worst(pts, pair[0], pair[1]) {
                    if round_best.is_none_or(|(b, _)| err > b) {
                        round_best = Some((err, split));
                    }
                }
            }
            match round_best {
                Some((err, split)) if err > 0.0 => {
                    let pos = kept
                        .binary_search(&split)
                        .expect_err("split is not kept yet");
                    kept.insert(pos, split);
                }
                _ => break, // zero error everywhere: done early
            }
        }
        kept
    }

    fn simplify_heap(&self, pts: &[Point], w: usize) -> Vec<usize> {
        let n = pts.len();
        // Max-heap of (error bits, s, e, split).
        let mut heap: BinaryHeap<(u64, usize, usize, usize)> = BinaryHeap::new();
        let mut kept = vec![0, n - 1];
        if let Some((err, split)) = self.worst(pts, 0, n - 1) {
            heap.push((err.to_bits(), 0, n - 1, split));
        }
        while kept.len() < w {
            let Some((err_bits, s, e, split)) = heap.pop() else {
                break; // every segment is exact already
            };
            if f64::from_bits(err_bits) == 0.0 {
                break; // zero error everywhere: done early, fewer points kept
            }
            kept.push(split);
            if let Some((err, sp)) = self.worst(pts, s, split) {
                heap.push((err.to_bits(), s, split, sp));
            }
            if let Some((err, sp)) = self.worst(pts, split, e) {
                heap.push((err.to_bits(), split, e, sp));
            }
        }
        kept.sort_unstable();
        kept
    }
}

impl BatchSimplifier for TopDown {
    fn name(&self) -> &'static str {
        "Top-Down"
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        assert!(w >= 2, "budget must be at least 2");
        let n = pts.len();
        if n <= w {
            return (0..n).collect();
        }
        match self.strategy {
            Strategy::Rescan => self.simplify_rescan(pts, w),
            Strategy::Heap => self.simplify_heap(pts, w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_support::{check_batch_contract, wiggly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract_rescan() {
        for m in Measure::ALL {
            check_batch_contract(&TopDown::new(m), m);
        }
    }

    #[test]
    fn contract_heap() {
        for m in Measure::ALL {
            check_batch_contract(&TopDown::fast(m), m);
        }
    }

    #[test]
    fn rescan_and_heap_agree() {
        // The two strategies pick the same global argmax each round (ties
        // aside), so the kept sets should produce the same error.
        let pts = wiggly(90);
        for m in Measure::ALL {
            for w in [5, 15, 40] {
                let a = TopDown::new(m).simplify(&pts, w);
                let b = TopDown::fast(m).simplify(&pts, w);
                let ea = simplification_error(m, &pts, &a, Aggregation::Max);
                let eb = simplification_error(m, &pts, &b, Aggregation::Max);
                assert!((ea - eb).abs() < 1e-9, "{m} w={w}: {ea} vs {eb}");
            }
        }
    }

    #[test]
    fn splits_at_the_spike() {
        let pts: Vec<Point> = (0..9)
            .map(|i| Point::new(i as f64, if i == 4 { 10.0 } else { 0.0 }, i as f64))
            .collect();
        let kept = TopDown::new(Measure::Ped).simplify(&pts, 3);
        assert_eq!(kept, vec![0, 4, 8]);
        let kept = TopDown::fast(Measure::Ped).simplify(&pts, 3);
        assert_eq!(kept, vec![0, 4, 8]);
    }

    #[test]
    fn error_trends_down_with_budget() {
        let pts = wiggly(80);
        for m in Measure::ALL {
            let small = TopDown::new(m).simplify(&pts, 4);
            let large = TopDown::new(m).simplify(&pts, 40);
            let e_small = simplification_error(m, &pts, &small, Aggregation::Max);
            let e_large = simplification_error(m, &pts, &large, Aggregation::Max);
            assert!(e_large <= e_small + 1e-9, "{m}: {e_large} !<= {e_small}");
        }
    }

    #[test]
    fn stops_early_on_exact_input() {
        // A straight constant-speed line needs only the endpoints.
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect();
        assert_eq!(TopDown::new(Measure::Sed).simplify(&pts, 10), vec![0, 19]);
        assert_eq!(TopDown::fast(Measure::Sed).simplify(&pts, 10), vec![0, 19]);
    }
}

trajectory::impl_simplifier_for_batch!(TopDown);
