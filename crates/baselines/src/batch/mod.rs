//! Batch-mode baselines: the exact Bellman dynamic program, Top-Down,
//! Bottom-Up, Span-Search (DAD-specific), and a uniform sampler.

mod bellman;
mod bottom_up;
mod span_search;
mod top_down;
mod uniform;

pub use bellman::Bellman;
pub use bottom_up::BottomUp;
pub use span_search::SpanSearch;
pub use top_down::TopDown;
pub use uniform::Uniform;

#[cfg(test)]
pub(crate) mod test_support {
    use trajectory::error::{simplification_error, Aggregation, Measure};
    use trajectory::{BatchSimplifier, Point};

    pub fn wiggly(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(f, (f * 0.7).sin() * 3.0 + (f * 0.13).cos() * 5.0, f)
            })
            .collect()
    }

    /// Shared conformance checks for any batch simplifier.
    pub fn check_batch_contract<S: BatchSimplifier>(algo: &S, measure: Measure) {
        let pts = wiggly(60);
        for w in [2, 3, 10, 30] {
            let kept = algo.simplify(&pts, w);
            assert!(
                kept.len() <= w,
                "{}: kept {} > w {}",
                algo.name(),
                kept.len(),
                w
            );
            assert!(kept.len() >= 2, "{}", algo.name());
            assert_eq!(kept[0], 0, "{}", algo.name());
            assert_eq!(*kept.last().unwrap(), pts.len() - 1, "{}", algo.name());
            assert!(kept.windows(2).all(|p| p[0] < p[1]), "{}", algo.name());
            let e = simplification_error(measure, &pts, &kept, Aggregation::Max);
            assert!(e.is_finite(), "{}", algo.name());
        }
        // No-op when the budget covers everything.
        let kept = algo.simplify(&pts[..7], 7);
        assert_eq!(kept, vec![0, 1, 2, 3, 4, 5, 6], "{}", algo.name());
        let kept = algo.simplify(&pts[..5], 50);
        assert_eq!(kept.len(), 5, "{}", algo.name());
    }
}
