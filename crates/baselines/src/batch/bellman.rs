//! The exact dynamic program for Min-Error (Bellman, 1961 — adapted to the
//! min–max objective): `D[i][c] = min_{j<i} max(D[j][c−1], ε(j, i))`.
//!
//! Runs in `O(n² · W)` time after an `O(n³)` segment-error precomputation —
//! prohibitive beyond a few hundred points (the paper uses it only on short
//! trajectories, Exp. 1), but it gives the optimum every approximate method
//! is judged against.

use trajectory::error::{range_max_error, ErrorMeasure, Measure};
use trajectory::{BatchSimplifier, Point};

/// The exact Bellman dynamic program for the Min-Error problem
/// (max aggregation).
#[derive(Debug, Clone)]
pub struct Bellman {
    measure: Measure,
}

impl Bellman {
    /// Creates the exact DP under `measure`.
    pub fn new(measure: Measure) -> Self {
        Bellman { measure }
    }
}

impl BatchSimplifier for Bellman {
    fn name(&self) -> &'static str {
        "Bellman"
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        assert!(w >= 2, "budget must be at least 2");
        let n = pts.len();
        if n <= w {
            return (0..n).collect();
        }

        // err[j * n + i] = ε(segment (j, i)) for j < i. Dispatch on the
        // measure once, outside the O(n²) precompute loops.
        let mut err = vec![0.0f64; n * n];
        trajectory::dispatch!(self.measure, M => {
            for j in 0..n {
                for i in (j + 1)..n {
                    err[j * n + i] = if i == j + 1 && !M::SEGMENT_BASED {
                        0.0
                    } else {
                        range_max_error::<M>(pts, j, i)
                    };
                }
            }
        });

        // dp[c][i]: minimal achievable max error keeping c+1 points of the
        // prefix ..=i with i kept (c segments). parent for reconstruction.
        let segs = w - 1;
        let mut dp_prev = vec![f64::INFINITY; n];
        let mut parent = vec![vec![usize::MAX; n]; segs + 1];
        // c = 1: one segment from 0 to i.
        for i in 1..n {
            dp_prev[i] = err[i];
            parent[1][i] = 0;
        }
        let mut dp_cur = vec![f64::INFINITY; n];
        #[allow(clippy::needless_range_loop)] // the index is the point id
        for c in 2..=segs {
            dp_cur.fill(f64::INFINITY);
            // Keeping c segments needs at least c points before i.
            for i in c..n {
                let mut best = f64::INFINITY;
                let mut best_j = usize::MAX;
                for j in (c - 1)..i {
                    let cand = dp_prev[j].max(err[j * n + i]);
                    if cand < best {
                        best = cand;
                        best_j = j;
                    }
                }
                dp_cur[i] = best;
                parent[c][i] = best_j;
            }
            std::mem::swap(&mut dp_prev, &mut dp_cur);
        }

        // Reconstruct from (segs, n-1).
        let mut kept = Vec::with_capacity(w);
        let mut i = n - 1;
        let mut c = segs;
        kept.push(i);
        while c >= 1 {
            let j = parent[c][i];
            debug_assert_ne!(j, usize::MAX, "broken DP chain at c={c}, i={i}");
            kept.push(j);
            i = j;
            c -= 1;
        }
        kept.reverse();
        debug_assert_eq!(kept[0], 0);
        kept
    }
}

impl Bellman {
    /// The optimal (minimal) max error achievable with budget `w`, without
    /// reconstructing the kept set.
    pub fn optimal_error(&self, pts: &[Point], w: usize) -> f64 {
        use trajectory::error::{simplification_error, Aggregation};
        let kept = Bellman::new(self.measure).simplify(pts, w);
        simplification_error(self.measure, pts, &kept, Aggregation::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_support::{check_batch_contract, wiggly};
    use crate::batch::{BottomUp, TopDown};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        for m in Measure::ALL {
            check_batch_contract(&Bellman::new(m), m);
        }
    }

    #[test]
    fn optimal_on_hand_case() {
        // A spike at index 2: with w = 3 the optimum keeps the spike.
        let pts: Vec<Point> = [(0.0, 0.0), (1.0, 0.1), (2.0, 5.0), (3.0, 0.1), (4.0, 0.0)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as f64))
            .collect();
        let kept = Bellman::new(Measure::Ped).simplify(&pts, 3);
        assert_eq!(kept, vec![0, 2, 4]);
    }

    #[test]
    fn never_worse_than_heuristics() {
        let pts = wiggly(50);
        for m in Measure::ALL {
            for w in [5, 10, 20] {
                let opt = Bellman::new(m).optimal_error(&pts, w);
                for kept in [
                    TopDown::new(m).simplify(&pts, w),
                    BottomUp::new(m).simplify(&pts, w),
                ] {
                    let e = simplification_error(m, &pts, &kept, Aggregation::Max);
                    assert!(
                        opt <= e + 1e-9,
                        "{m} w={w}: Bellman {opt} worse than heuristic {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_check_on_tiny_input() {
        // Brute-force all subsets of interior points for n = 8, w = 4 and
        // confirm the DP matches the true optimum.
        let pts = wiggly(8);
        for m in Measure::ALL {
            let opt = Bellman::new(m).optimal_error(&pts, 4);
            let mut best = f64::INFINITY;
            for a in 1..7 {
                for b in (a + 1)..7 {
                    let kept = vec![0, a, b, 7];
                    let e = simplification_error(m, &pts, &kept, Aggregation::Max);
                    best = best.min(e);
                }
            }
            assert!((opt - best).abs() < 1e-9, "{m}: dp {opt} vs brute {best}");
        }
    }
}

trajectory::impl_simplifier_for_batch!(Bellman);
