//! Span-Search — the DAD-specific batch baseline.
//!
//! The published algorithm ([22] in the paper) bounds the *span of movement
//! directions* a single anchor segment may cover. This reimplementation (the
//! original code is not available; see DESIGN.md §4) keeps that core idea:
//!
//! 1. `feasible(θ)` greedily extends each anchor segment as far as possible
//!    while every covered movement direction stays within `θ` of the anchor
//!    direction — yielding the fewest kept points for that bound;
//! 2. a binary search over `θ` finds the smallest direction bound whose
//!    greedy cover fits the budget `W`.

use std::f64::consts::PI;
use trajectory::error::{range_within, Dad, Measure};
use trajectory::{BatchSimplifier, Point};

/// The Span-Search batch simplifier (DAD only).
#[derive(Debug, Clone)]
pub struct SpanSearch {
    /// Binary-search iterations over the direction bound.
    pub search_iters: usize,
}

impl Default for SpanSearch {
    fn default() -> Self {
        SpanSearch { search_iters: 32 }
    }
}

impl SpanSearch {
    /// Creates a Span-Search simplifier with default search depth.
    pub fn new() -> Self {
        Self::default()
    }

    /// The error measure this algorithm targets (always DAD).
    pub fn measure(&self) -> Measure {
        Measure::Dad
    }

    /// Greedy minimal cover for direction bound `theta`: extends each anchor
    /// segment while the DAD error of every covered movement segment stays
    /// within `theta`. Returns the kept indices.
    fn cover(&self, pts: &[Point], theta: f64) -> Vec<usize> {
        let n = pts.len();
        let mut kept = vec![0usize];
        let mut s = 0usize;
        while s < n - 1 {
            // Longest e such that segment (s, e) covers movements s..e within theta.
            let mut e = s + 1;
            let mut best = e;
            while e < n {
                // Statically DAD: the kernel is monomorphized at compile time,
                // no runtime dispatch in the doubly-nested extension loop.
                if range_within::<Dad>(pts, s, e, theta) {
                    best = e;
                    e += 1;
                } else {
                    break;
                }
            }
            kept.push(best);
            s = best;
        }
        kept
    }
}

impl BatchSimplifier for SpanSearch {
    fn name(&self) -> &'static str {
        "Span-Search"
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        assert!(w >= 2, "budget must be at least 2");
        let n = pts.len();
        if n <= w {
            return (0..n).collect();
        }
        let (mut lo, mut hi) = (0.0f64, PI);
        let mut best = self.cover(pts, hi);
        for _ in 0..self.search_iters {
            let mid = 0.5 * (lo + hi);
            let kept = self.cover(pts, mid);
            if kept.len() <= w {
                best = kept;
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // The greedy cover at θ = π keeps exactly the endpoints (every
        // direction fits), so `best` always satisfies the budget.
        debug_assert!(best.len() <= w);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_support::{check_batch_contract, wiggly};
    use trajectory::error::{simplification_error, Aggregation};

    #[test]
    fn contract() {
        check_batch_contract(&SpanSearch::new(), Measure::Dad);
    }

    #[test]
    fn straight_line_needs_two_points() {
        let pts: Vec<Point> = (0..15)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect();
        let kept = SpanSearch::new().simplify(&pts, 5);
        assert_eq!(kept, vec![0, 14]);
    }

    #[test]
    fn keeps_direction_changes() {
        // Square-wave path: directions alternate by 90°, so a small budget
        // must place kept points at the turns it can afford.
        let mut pts = Vec::new();
        let mut t = 0.0;
        for rep in 0..4 {
            for i in 0..5 {
                pts.push(Point::new((rep * 10 + i) as f64, (rep % 2) as f64 * 5.0, t));
                t += 1.0;
            }
        }
        let kept = SpanSearch::new().simplify(&pts, 8);
        let e = simplification_error(Measure::Dad, &pts, &kept, Aggregation::Max);
        let endpoints_only =
            simplification_error(Measure::Dad, &pts, &[0, pts.len() - 1], Aggregation::Max);
        assert!(
            e <= endpoints_only,
            "search should not be worse than keeping nothing"
        );
    }

    #[test]
    fn tighter_budget_never_reduces_error() {
        let pts = wiggly(60);
        let loose = SpanSearch::new().simplify(&pts, 30);
        let tight = SpanSearch::new().simplify(&pts, 5);
        let e_loose = simplification_error(Measure::Dad, &pts, &loose, Aggregation::Max);
        let e_tight = simplification_error(Measure::Dad, &pts, &tight, Aggregation::Max);
        assert!(
            e_loose <= e_tight + 1e-9,
            "loose {e_loose} vs tight {e_tight}"
        );
    }
}

trajectory::impl_simplifier_for_batch!(SpanSearch);
