//! Uniform sampling — the trivial baseline that keeps evenly spaced points.
//! Not part of the paper's comparison set; used as a sanity floor in the
//! ablation experiments.

use trajectory::{BatchSimplifier, Point};

/// Keeps `w` evenly spaced indices (always including both endpoints).
#[derive(Debug, Clone, Default)]
pub struct Uniform;

impl Uniform {
    /// Creates the uniform sampler.
    pub fn new() -> Self {
        Uniform
    }
}

impl BatchSimplifier for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        assert!(w >= 2, "budget must be at least 2");
        let n = pts.len();
        if n <= w {
            return (0..n).collect();
        }
        let mut kept: Vec<usize> = (0..w)
            .map(|i| (i as f64 * (n - 1) as f64 / (w - 1) as f64).round() as usize)
            .collect();
        kept.dedup();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::test_support::check_batch_contract;
    use trajectory::error::Measure;

    #[test]
    fn contract() {
        check_batch_contract(&Uniform::new(), Measure::Sed);
    }

    #[test]
    fn spacing_is_even() {
        let pts: Vec<Point> = (0..101)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect();
        let kept = Uniform::new().simplify(&pts, 5);
        assert_eq!(kept, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn endpoints_always_present() {
        let pts: Vec<Point> = (0..7)
            .map(|i| Point::new(i as f64, 0.0, i as f64))
            .collect();
        for w in 2..7 {
            let kept = Uniform::new().simplify(&pts, w);
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 6);
        }
    }
}

trajectory::impl_simplifier_for_batch!(Uniform);
