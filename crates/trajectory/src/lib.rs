//! Trajectory data model and error measures for the Min-Error trajectory
//! simplification problem, as defined in *Trajectory Simplification with
//! Reinforcement Learning* (Wang, Long, Cong — ICDE 2021).
//!
//! This crate is the substrate every algorithm in the workspace builds on:
//!
//! * [`Point`] / [`Trajectory`] — spatio-temporal points and validated
//!   sequences thereof;
//! * [`Segment`] — anchor segments and point-vs-segment geometry;
//! * [`error`] — the four error measures (SED, PED, DAD, SAD), segment and
//!   whole-trajectory error under the anchor-segment semantics;
//! * [`cols`] — struct-of-arrays column storage ([`TrajCols`] /
//!   [`ColsView`]) feeding the autovectorizable SoA range kernels and the
//!   on-disk column segments (DESIGN.md §16);
//! * [`ErrorBook`] — incremental error maintenance for drop/append edits
//!   (drives RL rewards and the Bottom-Up family);
//! * [`memo`] — shared memoization of anchor-range error statistics
//!   (DESIGN.md §14);
//! * [`io`] — CSV and compact binary trajectory formats;
//! * [`stats`] — dataset statistics (paper Table I).
//!
//! # Example
//!
//! ```
//! use trajectory::{Trajectory, error::{simplification_error, Measure, Aggregation}};
//!
//! let t = Trajectory::from_xyt(&[
//!     (0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 0.0, 2.0), (3.0, 0.0, 3.0),
//! ]).unwrap();
//! // Keep the endpoints and the detour apex: zero SED error is impossible,
//! // but keeping index 1 bounds it.
//! let e = simplification_error(Measure::Sed, t.points(), &[0, 1, 3], Aggregation::Max);
//! assert!(e > 0.0);
//! ```

#![warn(missing_docs)]

mod buffer;
pub mod codec;
pub mod cols;
pub mod error;
pub mod formats;
mod incremental;
pub mod io;
pub mod memo;
mod point;
pub mod preprocess;
mod segment;
pub mod similarity;
mod simplifier;
pub mod stats;
mod traj;

pub use buffer::OrderedBuffer;
pub use cols::{ColsView, TrajCols};
pub use incremental::ErrorBook;
pub use point::{angular_difference, Point};
pub use segment::Segment;
pub use simplifier::{
    point_counters, BatchSimplifier, Budget, CloneOnlineSimplifier, ErrorBoundedSimplifier,
    OnlineAsBatch, OnlineSimplifier, Simplification, Simplifier, SimplifyStats,
};
pub use traj::{Trajectory, TrajectoryError};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::error::{drop_error, segment_error, simplification_error, Aggregation, Measure};
    // `Simplifier` is deliberately absent: its `simplify` method would make
    // every `BatchSimplifier::simplify` call ambiguous under a glob import.
    // Budget-polymorphic code imports it explicitly.
    pub use crate::{
        BatchSimplifier, Budget, CloneOnlineSimplifier, ErrorBook, OnlineSimplifier, OrderedBuffer,
        Point, Segment, Simplification, Trajectory,
    };
}
