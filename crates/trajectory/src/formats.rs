//! Loaders for the two public dataset formats the paper evaluates on:
//! Geolife `.plt` files and T-Drive taxi logs. Both come as WGS-84
//! latitude/longitude; points are projected to local planar meters with an
//! equirectangular projection around the first fix (adequate at city scale,
//! where the paper's error measures operate).

use crate::io::IoError;
use crate::point::Point;
use crate::traj::Trajectory;
use std::io::{BufRead, BufReader, Read};

/// Mean Earth radius in meters (IUGG).
const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Projects WGS-84 degrees to local planar meters around a reference
/// latitude/longitude (equirectangular).
pub fn project_equirectangular(lat: f64, lon: f64, ref_lat: f64, ref_lon: f64) -> (f64, f64) {
    let x = (lon - ref_lon).to_radians() * ref_lat.to_radians().cos() * EARTH_RADIUS_M;
    let y = (lat - ref_lat).to_radians() * EARTH_RADIUS_M;
    (x, y)
}

/// Reads one Geolife `.plt` file: 6 header lines, then
/// `lat,lon,0,alt_ft,days,date,time` records. Timestamps come from the
/// fractional-days field (days × 86400 s). Coordinates are projected to
/// meters around the first fix.
pub fn read_geolife_plt<R: Read>(reader: R) -> Result<Trajectory, IoError> {
    let reader = BufReader::new(reader);
    let mut pts: Vec<Point> = Vec::new();
    let mut reference: Option<(f64, f64)> = None;
    let mut t0: Option<f64> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno < 6 {
            continue; // fixed-size PLT header
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 5 {
            return Err(IoError::Parse(
                lineno + 1,
                format!("expected ≥5 fields, got {}", fields.len()),
            ));
        }
        let lat: f64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad latitude: {e}")))?;
        let lon: f64 = fields[1]
            .trim()
            .parse()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad longitude: {e}")))?;
        let days: f64 = fields[4]
            .trim()
            .parse()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad days field: {e}")))?;
        let (ref_lat, ref_lon) = *reference.get_or_insert((lat, lon));
        let t_abs = days * 86_400.0;
        let t0 = *t0.get_or_insert(t_abs);
        let (x, y) = project_equirectangular(lat, lon, ref_lat, ref_lon);
        pts.push(Point::new(x, y, t_abs - t0));
    }
    Ok(Trajectory::new(pts)?)
}

/// Reads one T-Drive taxi log: `taxi_id,YYYY-MM-DD HH:MM:SS,lon,lat`
/// records (a single taxi per file in the public release). Timestamps are
/// seconds since the first fix; coordinates are projected to meters around
/// the first fix.
pub fn read_tdrive<R: Read>(reader: R) -> Result<Trajectory, IoError> {
    let reader = BufReader::new(reader);
    let mut pts: Vec<Point> = Vec::new();
    let mut reference: Option<(f64, f64)> = None;
    let mut t0: Option<i64> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 {
            return Err(IoError::Parse(
                lineno + 1,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let epoch = parse_datetime(fields[1].trim())
            .ok_or_else(|| IoError::Parse(lineno + 1, format!("bad datetime '{}'", fields[1])))?;
        let lon: f64 = fields[2]
            .trim()
            .parse()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad longitude: {e}")))?;
        let lat: f64 = fields[3]
            .trim()
            .parse()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad latitude: {e}")))?;
        let (ref_lat, ref_lon) = *reference.get_or_insert((lat, lon));
        let t0 = *t0.get_or_insert(epoch);
        let (x, y) = project_equirectangular(lat, lon, ref_lat, ref_lon);
        pts.push(Point::new(x, y, (epoch - t0) as f64));
    }
    Ok(Trajectory::new(pts)?)
}

/// Parses `YYYY-MM-DD HH:MM:SS` into Unix seconds (UTC, no leap seconds).
fn parse_datetime(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 19
        || bytes[4] != b'-'
        || bytes[7] != b'-'
        || bytes[10] != b' '
        || bytes[13] != b':'
        || bytes[16] != b':'
    {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> { s.get(range)?.parse().ok() };
    let year = num(0..4)?;
    let month = num(5..7)?;
    let day = num(8..10)?;
    let hour = num(11..13)?;
    let minute = num(14..16)?;
    let second = num(17..19)?;
    if !(1..=12).contains(&month) || !(1..=days_in_month(year, month)).contains(&day) {
        return None;
    }
    if !(0..24).contains(&hour) || !(0..60).contains(&minute) || !(0..60).contains(&second) {
        return None;
    }
    Some(days_from_civil(year, month, day) * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// Number of days in a Gregorian month.
fn days_in_month(y: i64, m: i64) -> i64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
    }
}

/// Days since the Unix epoch for a proleptic-Gregorian civil date
/// (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLT: &str = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n\
0,2,255,My Track,0,0,2,8421376\n0\n\
39.906631,116.385564,0,492,39745.1201851852,2008-10-24,02:53:04\n\
39.906711,116.385001,0,492,39745.1202430556,2008-10-24,02:53:09\n\
39.906823,116.384377,0,492,39745.1203009259,2008-10-24,02:53:14\n";

    #[test]
    fn plt_parses_and_projects() {
        let t = read_geolife_plt(PLT.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        // First point anchors the projection at the origin, t = 0.
        assert_eq!(t[0].x, 0.0);
        assert_eq!(t[0].y, 0.0);
        assert_eq!(t[0].t, 0.0);
        // 5-second sampling from the days field.
        assert!((t[1].t - 5.0).abs() < 0.2, "{}", t[1].t);
        assert!((t[2].t - 10.0).abs() < 0.2, "{}", t[2].t);
        // ~0.0006° of longitude at Beijing latitude ≈ 48 m westward.
        assert!(t[1].x < -30.0 && t[1].x > -70.0, "{}", t[1].x);
        assert!(t[1].y > 0.0 && t[1].y < 30.0, "{}", t[1].y);
    }

    #[test]
    fn plt_rejects_bad_record() {
        let bad = PLT.replace("39.906711", "oops");
        match read_geolife_plt(bad.as_bytes()) {
            Err(IoError::Parse(8, msg)) => assert!(msg.contains("latitude")),
            other => panic!("expected parse error at line 8, got {other:?}"),
        }
    }

    const TDRIVE: &str = "1,2008-02-02 15:36:08,116.51172,39.92123\n\
1,2008-02-02 15:46:08,116.51135,39.93883\n\
1,2008-02-02 15:56:08,116.51627,39.91034\n";

    #[test]
    fn tdrive_parses_with_10min_sampling() {
        let t = read_tdrive(TDRIVE.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].t, 0.0);
        assert_eq!(t[1].t, 600.0);
        assert_eq!(t[2].t, 1200.0);
        // ~0.0176° of latitude ≈ 1.96 km northward.
        assert!(t[1].y > 1_800.0 && t[1].y < 2_100.0, "{}", t[1].y);
    }

    #[test]
    fn tdrive_rejects_malformed_datetime() {
        let bad = "1,2008-13-02 15:36:08,116.5,39.9\n";
        assert!(matches!(
            read_tdrive(bad.as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        let bad = "1,2008-02-02T15:36:08,116.5,39.9\n";
        assert!(matches!(
            read_tdrive(bad.as_bytes()),
            Err(IoError::Parse(1, _))
        ));
    }

    #[test]
    fn datetime_epoch_reference() {
        assert_eq!(parse_datetime("1970-01-01 00:00:00"), Some(0));
        assert_eq!(parse_datetime("1970-01-02 00:00:01"), Some(86_401));
        // Leap year handling.
        assert_eq!(
            parse_datetime("2008-03-01 00:00:00").unwrap()
                - parse_datetime("2008-02-28 00:00:00").unwrap(),
            2 * 86_400
        );
        assert_eq!(parse_datetime("2008-02-30 00:00:00"), None);
    }

    #[test]
    fn projection_scale_sanity() {
        // 0.01° of latitude ≈ 1.11 km anywhere.
        let (_, y) = project_equirectangular(39.91, 116.0, 39.90, 116.0);
        assert!((y - 1_111.9).abs() < 5.0, "{y}");
        // Longitude shrinks with cos(latitude).
        let (x, _) = project_equirectangular(60.0, 0.01, 60.0, 0.0);
        assert!((x - 1_111.9 * 0.5).abs() < 5.0, "{x}");
    }
}
