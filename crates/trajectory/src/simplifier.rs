//! Common interfaces implemented by every simplification algorithm in the
//! workspace (baselines and the RLTS family alike).

use crate::point::Point;

/// A batch-mode simplifier: sees the whole trajectory and returns the kept
/// indices.
pub trait BatchSimplifier {
    /// Short algorithm name for reports (e.g. `"Bottom-Up"`).
    fn name(&self) -> &'static str;

    /// Simplifies `pts` down to at most `w` points, returning the kept
    /// 0-based indices in ascending order. The first and last index are
    /// always kept. If `pts.len() <= w` all indices are returned.
    ///
    /// # Panics
    /// Implementations may panic if `w < 2` or `pts.len() < 2`.
    fn simplify(&mut self, pts: &[Point], w: usize) -> Vec<usize>;
}

/// An online-mode simplifier: consumes the stream point by point while
/// holding at most `w` points in its buffer.
pub trait OnlineSimplifier {
    /// Short algorithm name for reports (e.g. `"SQUISH"`).
    fn name(&self) -> &'static str;

    /// Starts a new stream with buffer budget `w`.
    ///
    /// # Panics
    /// Implementations may panic if `w < 2`.
    fn begin(&mut self, w: usize);

    /// Feeds the next stream point.
    fn observe(&mut self, p: Point);

    /// Ends the stream and returns the kept stream positions (0-based, in
    /// ascending order).
    fn finish(&mut self) -> Vec<usize>;

    /// Convenience wrapper running a whole point slice through the stream
    /// interface.
    ///
    /// Also reports `simplify.points.observed` / `simplify.points.dropped`
    /// (labelled `algo=`[`name()`](OnlineSimplifier::name)) into
    /// [`obskit::global()`] — one registry lookup per run, so the per-point
    /// path stays untouched. See DESIGN.md §9.
    fn run(&mut self, pts: &[Point], w: usize) -> Vec<usize> {
        self.begin(w);
        for &p in pts {
            self.observe(p);
        }
        let kept = self.finish();
        let algo = self.name().to_ascii_lowercase();
        let labels = [("algo", algo.as_str())];
        obskit::global()
            .counter_with("simplify.points.observed", &labels)
            .add(pts.len() as u64);
        obskit::global()
            .counter_with("simplify.points.dropped", &labels)
            .add(pts.len().saturating_sub(kept.len()) as u64);
        kept
    }
}

/// A simplifier for the *dual* Min-Size problem (paper §II): keep as few
/// points as possible subject to an error bound `epsilon`.
pub trait ErrorBoundedSimplifier {
    /// Short algorithm name for reports (e.g. `"Split"`).
    fn name(&self) -> &'static str;

    /// Simplifies `pts` keeping as few points as the algorithm manages while
    /// guaranteeing the simplification error stays within `epsilon`.
    /// Returns the kept 0-based indices in ascending order, always including
    /// both endpoints.
    ///
    /// # Panics
    /// Implementations may panic if `epsilon` is negative or `pts.len() < 2`.
    fn simplify_bounded(&mut self, pts: &[Point], epsilon: f64) -> Vec<usize>;
}

/// Adapts an online simplifier into a batch one (the paper runs its online
/// algorithms in batch-mode comparisons this way).
pub struct OnlineAsBatch<T>(pub T);

impl<T: OnlineSimplifier> BatchSimplifier for OnlineAsBatch<T> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn simplify(&mut self, pts: &[Point], w: usize) -> Vec<usize> {
        self.0.run(pts, w)
    }
}
