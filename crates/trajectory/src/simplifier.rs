//! Common interfaces implemented by every simplification algorithm in the
//! workspace (baselines and the RLTS family alike).
//!
//! # Sharing contract (DESIGN.md §10)
//!
//! Batch and error-bounded simplifiers are *values*: configuration plus
//! frozen model weights, never per-run scratch. Their entry points take
//! `&self` and the traits require `Send + Sync`, so one boxed algorithm can
//! be shared by every evaluation worker simultaneously — scratch state is
//! allocated inside each call. Online simplifiers are inherently stateful
//! (they *are* the stream buffer), so they keep `&mut self`; parallel
//! evaluation clones one prototype per task instead (see
//! [`CloneOnlineSimplifier`]), which is sound because
//! [`OnlineSimplifier::begin`] must fully reset all per-stream state.
//!
//! # Budget unification
//!
//! The Min-Error problem ("best error within `w` points") and its Min-Size
//! dual ("fewest points within error `ε`") historically had divergent entry
//! points. [`Simplifier`] unifies them behind a [`Budget`] and a common
//! [`Simplification`] return value, so callers like the CLI can treat both
//! families uniformly; the specialized traits remain the implementation
//! surface.

use crate::point::Point;
use obskit::Counter;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A batch-mode simplifier: sees the whole trajectory and returns the kept
/// indices.
///
/// Implementations hold configuration only — `simplify` takes `&self` and
/// allocates any scratch per call, so one value can serve many threads.
pub trait BatchSimplifier: Send + Sync {
    /// Short algorithm name for reports (e.g. `"Bottom-Up"`).
    fn name(&self) -> &'static str;

    /// Simplifies `pts` down to at most `w` points, returning the kept
    /// 0-based indices in ascending order. The first and last index are
    /// always kept. If `pts.len() <= w` all indices are returned.
    ///
    /// # Panics
    /// Implementations may panic if `w < 2` or `pts.len() < 2`.
    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize>;
}

/// An online-mode simplifier: consumes the stream point by point while
/// holding at most `w` points in its buffer.
pub trait OnlineSimplifier {
    /// Short algorithm name for reports (e.g. `"SQUISH"`).
    fn name(&self) -> &'static str;

    /// Starts a new stream with buffer budget `w`.
    ///
    /// Must fully reset *all* per-stream state (buffers, counters, RNG
    /// reseeding): a value that has `begin` called on it behaves identically
    /// to a freshly constructed one. Parallel evaluation depends on this —
    /// it clones a prototype per task and calls `begin` on each clone.
    ///
    /// # Panics
    /// Implementations may panic if `w < 2`.
    fn begin(&mut self, w: usize);

    /// Feeds the next stream point.
    fn observe(&mut self, p: Point);

    /// Ends the stream and returns the kept stream positions (0-based, in
    /// ascending order).
    fn finish(&mut self) -> Vec<usize>;

    /// A fingerprint of everything (besides the input points and `w`) that
    /// [`run`](OnlineSimplifier::run)'s output depends on, or `None` when no
    /// such fingerprint exists.
    ///
    /// `Some(token)` is a promise that two simplifiers returning the same
    /// token produce **bit-identical** `run` output for identical `(pts, w)`
    /// inputs — the licence whole-window memoization (DESIGN.md §14) needs
    /// to reuse one instance's output for another. Deterministic algorithms
    /// hash their name and configuration; seed-consuming ones must fold the
    /// seed in (limiting reuse to their own repeats); anything else keeps
    /// the default `None` and is never memoized.
    fn memo_token(&self) -> Option<u64> {
        None
    }

    /// Statistics of any internal memoization cache the simplifier carries
    /// (e.g. a policy forward-pass cache), or `None` when it has none.
    ///
    /// Purely observational: the figures feed the `cache.*` telemetry
    /// family and never influence simplification output.
    fn cache_stats(&self) -> Option<trajcache::CacheStats> {
        None
    }

    /// Convenience wrapper running a whole point slice through the stream
    /// interface.
    ///
    /// Also reports `simplify.points.observed` / `simplify.points.dropped`
    /// (labelled `algo=`[`name()`](OnlineSimplifier::name)) into
    /// [`obskit::global()`] via a process-wide cached handle — repeated runs
    /// in the eval grid re-use the label instead of re-validating and
    /// re-allocating it per call. See DESIGN.md §9.
    fn run(&mut self, pts: &[Point], w: usize) -> Vec<usize> {
        self.begin(w);
        for &p in pts {
            self.observe(p);
        }
        let kept = self.finish();
        let (observed, dropped) = point_counters(self.name());
        observed.add(pts.len() as u64);
        dropped.add(pts.len().saturating_sub(kept.len()) as u64);
        kept
    }
}

/// An [`OnlineSimplifier`] that can be duplicated behind a trait object.
///
/// This is the clone-per-worker bridge for parallel evaluation: the eval
/// grid holds one prototype `Box<dyn CloneOnlineSimplifier>` per algorithm
/// and clones it for each trajectory task. Blanket-implemented for every
/// `Clone + Send + Sync` online simplifier.
pub trait CloneOnlineSimplifier: OnlineSimplifier + Send + Sync {
    /// Clones this simplifier into a fresh box.
    fn clone_box(&self) -> Box<dyn CloneOnlineSimplifier>;
}

impl<T> CloneOnlineSimplifier for T
where
    T: OnlineSimplifier + Clone + Send + Sync + 'static,
{
    fn clone_box(&self) -> Box<dyn CloneOnlineSimplifier> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn CloneOnlineSimplifier> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

/// A simplifier for the *dual* Min-Size problem (paper §II): keep as few
/// points as possible subject to an error bound `epsilon`.
///
/// Same sharing contract as [`BatchSimplifier`]: `&self`, scratch per call.
pub trait ErrorBoundedSimplifier: Send + Sync {
    /// Short algorithm name for reports (e.g. `"Split"`).
    fn name(&self) -> &'static str;

    /// Simplifies `pts` keeping as few points as the algorithm manages while
    /// guaranteeing the simplification error stays within `epsilon`.
    /// Returns the kept 0-based indices in ascending order, always including
    /// both endpoints.
    ///
    /// # Panics
    /// Implementations may panic if `epsilon` is negative or `pts.len() < 2`.
    fn simplify_bounded(&self, pts: &[Point], epsilon: f64) -> Vec<usize>;
}

/// The resource budget a simplification runs under: either the Min-Error
/// form (at most `w` points, minimize error) or the Min-Size dual (any
/// number of points, error at most `ε`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Keep at most this many points (Min-Error; paper §II problem 1).
    Points(usize),
    /// Keep error within this bound (Min-Size; paper §II problem 2).
    Error(f64),
}

/// Size bookkeeping for one simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Number of input points.
    pub points_in: usize,
    /// Number of points kept.
    pub points_kept: usize,
}

impl SimplifyStats {
    /// The compression ratio `points_in / points_kept` (∞-safe: returns 0
    /// when nothing was kept).
    pub fn compression(&self) -> f64 {
        if self.points_kept == 0 {
            0.0
        } else {
            self.points_in as f64 / self.points_kept as f64
        }
    }
}

/// The uniform result of a budgeted simplification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Simplification {
    /// Kept 0-based indices, ascending, endpoints included.
    pub kept: Vec<usize>,
    /// Size bookkeeping for the run.
    pub stats: SimplifyStats,
}

impl Simplification {
    /// Wraps a kept-index vector produced from `points_in` input points.
    pub fn new(points_in: usize, kept: Vec<usize>) -> Self {
        let stats = SimplifyStats {
            points_in,
            points_kept: kept.len(),
        };
        Simplification { kept, stats }
    }
}

/// The unified entry point over both problem forms.
///
/// Implementations accept whichever [`Budget`] variants they `support` and
/// panic on the others — callers route with [`Simplifier::supports`] when
/// the budget is dynamic. Implemented for every batch algorithm via
/// `impl_simplifier_for_batch!` and every error-bounded one via
/// `impl_simplifier_for_bounded!`.
pub trait Simplifier: Send + Sync {
    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Whether this algorithm can run under the given budget kind.
    fn supports(&self, budget: &Budget) -> bool;

    /// Runs the simplification under `budget`.
    ///
    /// # Panics
    /// If `!self.supports(budget)`, or under the underlying algorithm's own
    /// preconditions.
    fn simplify(&self, pts: &[Point], budget: Budget) -> Simplification;
}

/// Implements [`Simplifier`] for a Min-Error ([`BatchSimplifier`]) type:
/// accepts [`Budget::Points`], panics on [`Budget::Error`].
#[macro_export]
macro_rules! impl_simplifier_for_batch {
    ($ty:ty) => {
        impl $crate::Simplifier for $ty {
            fn name(&self) -> &'static str {
                <$ty as $crate::BatchSimplifier>::name(self)
            }

            fn supports(&self, budget: &$crate::Budget) -> bool {
                matches!(budget, $crate::Budget::Points(_))
            }

            fn simplify(
                &self,
                pts: &[$crate::Point],
                budget: $crate::Budget,
            ) -> $crate::Simplification {
                match budget {
                    $crate::Budget::Points(w) => $crate::Simplification::new(
                        pts.len(),
                        <$ty as $crate::BatchSimplifier>::simplify(self, pts, w),
                    ),
                    other => panic!(
                        "{} is a Min-Error algorithm; unsupported budget {other:?}",
                        <$ty as $crate::BatchSimplifier>::name(self)
                    ),
                }
            }
        }
    };
}

/// Implements [`Simplifier`] for a Min-Size ([`ErrorBoundedSimplifier`])
/// type: accepts [`Budget::Error`], panics on [`Budget::Points`].
#[macro_export]
macro_rules! impl_simplifier_for_bounded {
    ($ty:ty) => {
        impl $crate::Simplifier for $ty {
            fn name(&self) -> &'static str {
                <$ty as $crate::ErrorBoundedSimplifier>::name(self)
            }

            fn supports(&self, budget: &$crate::Budget) -> bool {
                matches!(budget, $crate::Budget::Error(_))
            }

            fn simplify(
                &self,
                pts: &[$crate::Point],
                budget: $crate::Budget,
            ) -> $crate::Simplification {
                match budget {
                    $crate::Budget::Error(epsilon) => $crate::Simplification::new(
                        pts.len(),
                        <$ty as $crate::ErrorBoundedSimplifier>::simplify_bounded(
                            self, pts, epsilon,
                        ),
                    ),
                    other => panic!(
                        "{} is a Min-Size algorithm; unsupported budget {other:?}",
                        <$ty as $crate::ErrorBoundedSimplifier>::name(self)
                    ),
                }
            }
        }
    };
}

/// Adapts an online simplifier into a batch one (the paper runs its online
/// algorithms in batch-mode comparisons this way).
///
/// The batch entry point is `&self`, so each call runs the stream on a
/// private clone of the wrapped algorithm — sound because
/// [`OnlineSimplifier::begin`] fully resets per-stream state.
pub struct OnlineAsBatch<T>(pub T);

impl<T> BatchSimplifier for OnlineAsBatch<T>
where
    T: OnlineSimplifier + Clone + Send + Sync,
{
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn simplify(&self, pts: &[Point], w: usize) -> Vec<usize> {
        self.0.clone().run(pts, w)
    }
}

impl<T> Simplifier for OnlineAsBatch<T>
where
    T: OnlineSimplifier + Clone + Send + Sync,
{
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn supports(&self, budget: &Budget) -> bool {
        matches!(budget, Budget::Points(_))
    }

    fn simplify(&self, pts: &[Point], budget: Budget) -> Simplification {
        match budget {
            Budget::Points(w) => {
                Simplification::new(pts.len(), BatchSimplifier::simplify(self, pts, w))
            }
            other => panic!(
                "{} is a Min-Error algorithm; unsupported budget {other:?}",
                self.0.name()
            ),
        }
    }
}

/// Cached `simplify.points.observed` / `simplify.points.dropped` counter
/// handles for an algorithm label.
///
/// Algorithm names are `&'static str`, so the lowercase label allocation
/// and the registry's label validation happen once per algorithm per
/// process instead of once per run — [`OnlineSimplifier::run`] and the
/// RLTS batch simplifiers sit on hot eval-grid paths.
pub fn point_counters(algo: &'static str) -> (Arc<Counter>, Arc<Counter>) {
    type Pair = (Arc<Counter>, Arc<Counter>);
    static CACHE: OnceLock<Mutex<HashMap<&'static str, Pair>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("point-counter cache poisoned");
    cache
        .entry(algo)
        .or_insert_with(|| {
            let label = algo.to_ascii_lowercase();
            let labels = [("algo", label.as_str())];
            let reg = obskit::global();
            (
                reg.counter_with("simplify.points.observed", &labels),
                reg.counter_with("simplify.points.dropped", &labels),
            )
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, (i % 3) as f64, i as f64))
            .collect()
    }

    /// Minimal stateful online algorithm: keeps every k-th point plus the
    /// endpoints.
    #[derive(Debug, Clone)]
    struct EveryKth {
        k: usize,
        seen: usize,
        kept: Vec<usize>,
    }

    impl EveryKth {
        fn new(k: usize) -> Self {
            EveryKth {
                k,
                seen: 0,
                kept: Vec::new(),
            }
        }
    }

    impl OnlineSimplifier for EveryKth {
        fn name(&self) -> &'static str {
            "Every-Kth"
        }
        fn begin(&mut self, _w: usize) {
            self.seen = 0;
            self.kept.clear();
        }
        fn observe(&mut self, _p: Point) {
            // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.75.
            #[allow(clippy::manual_is_multiple_of)]
            if self.seen % self.k == 0 {
                self.kept.push(self.seen);
            }
            self.seen += 1;
        }
        fn finish(&mut self) -> Vec<usize> {
            if self.kept.last() != Some(&(self.seen - 1)) {
                self.kept.push(self.seen - 1);
            }
            std::mem::take(&mut self.kept)
        }
    }

    struct KeepEnds;
    impl BatchSimplifier for KeepEnds {
        fn name(&self) -> &'static str {
            "Keep-Ends"
        }
        fn simplify(&self, pts: &[Point], _w: usize) -> Vec<usize> {
            vec![0, pts.len() - 1]
        }
    }
    impl_simplifier_for_batch!(KeepEnds);

    struct KeepAll;
    impl ErrorBoundedSimplifier for KeepAll {
        fn name(&self) -> &'static str {
            "Keep-All"
        }
        fn simplify_bounded(&self, pts: &[Point], _epsilon: f64) -> Vec<usize> {
            (0..pts.len()).collect()
        }
    }
    impl_simplifier_for_bounded!(KeepAll);

    #[test]
    fn online_as_batch_is_reusable_from_shared_ref() {
        let adapter = OnlineAsBatch(EveryKth::new(2));
        let data = pts(7);
        let a = BatchSimplifier::simplify(&adapter, &data, 4);
        let b = BatchSimplifier::simplify(&adapter, &data, 4);
        assert_eq!(a, b, "each call must start from a fresh stream");
        assert_eq!(a, vec![0, 2, 4, 6]);
    }

    #[test]
    fn batch_macro_routes_points_budget() {
        let algo = KeepEnds;
        let data = pts(5);
        assert!(Simplifier::supports(&algo, &Budget::Points(2)));
        assert!(!Simplifier::supports(&algo, &Budget::Error(0.1)));
        let s = Simplifier::simplify(&algo, &data, Budget::Points(2));
        assert_eq!(s.kept, vec![0, 4]);
        assert_eq!(s.stats.points_in, 5);
        assert_eq!(s.stats.points_kept, 2);
        assert!((s.stats.compression() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unsupported budget")]
    fn batch_macro_panics_on_error_budget() {
        let algo = KeepEnds;
        let data = pts(5);
        Simplifier::simplify(&algo, &data, Budget::Error(0.5));
    }

    #[test]
    fn bounded_macro_routes_error_budget() {
        let algo = KeepAll;
        let data = pts(4);
        assert!(Simplifier::supports(&algo, &Budget::Error(0.5)));
        assert!(!Simplifier::supports(&algo, &Budget::Points(3)));
        let s = Simplifier::simplify(&algo, &data, Budget::Error(0.5));
        assert_eq!(s.kept.len(), 4);
        assert_eq!(s.stats.points_kept, 4);
    }

    #[test]
    fn clone_online_box_clones_independently() {
        let proto: Box<dyn CloneOnlineSimplifier> = Box::new(EveryKth::new(3));
        let data = pts(10);
        let mut a = proto.clone();
        let mut b = proto.clone();
        assert_eq!(a.run(&data, 5), b.run(&data, 5));
    }

    #[test]
    fn run_reports_into_cached_counters() {
        let data = pts(9);
        let mut algo = EveryKth::new(3);
        let kept = algo.run(&data, 5);
        let snap = obskit::global().snapshot();
        let labels = [("algo", "every-kth")];
        let observed = snap.get(&obskit::MetricId::with_labels(
            "simplify.points.observed",
            &labels,
        ));
        match observed.map(|s| &s.value) {
            Some(obskit::Value::Counter(v)) => assert!(*v >= 9, "{v}"),
            other => panic!("observed counter missing: {other:?}"),
        }
        let dropped = snap.get(&obskit::MetricId::with_labels(
            "simplify.points.dropped",
            &labels,
        ));
        match dropped.map(|s| &s.value) {
            Some(obskit::Value::Counter(v)) => assert!(*v >= (9 - kept.len()) as u64),
            other => panic!("dropped counter missing: {other:?}"),
        }
        // Cached handles are the same Arc on repeated lookups.
        let (o1, _) = point_counters("Every-Kth");
        let (o2, _) = point_counters("Every-Kth");
        assert!(Arc::ptr_eq(&o1, &o2));
    }

    #[test]
    fn simplification_stats_handle_empty() {
        let s = Simplification::new(10, vec![]);
        assert_eq!(s.stats.compression(), 0.0);
    }
}
