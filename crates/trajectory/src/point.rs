//! Spatio-temporal points.

use serde::{Deserialize, Serialize};

/// A time-stamped location `(x, y, t)`.
///
/// Coordinates are planar (meters in the synthetic generators; any projected
/// unit works as long as it is consistent) and `t` is in seconds. The paper
/// interprets an object as moving along the straight segment between two
/// consecutive points at constant speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (e.g. meters east).
    pub x: f64,
    /// Y coordinate (e.g. meters north).
    pub y: f64,
    /// Timestamp in seconds.
    pub t: f64,
}

impl Point {
    /// Creates a point from coordinates and a timestamp.
    #[inline]
    pub const fn new(x: f64, y: f64, t: f64) -> Self {
        Point { x, y, t }
    }

    /// Euclidean distance between the *locations* of two points
    /// (timestamps are ignored).
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance between the locations of two points.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Position linearly interpolated between `self` and `other` at time `t`.
    ///
    /// If the two timestamps coincide the midpoint convention of the SED
    /// literature is used (the segment degenerates to an instant, so the
    /// start location is returned).
    pub fn interpolate_at(&self, other: &Point, t: f64) -> (f64, f64) {
        let dt = other.t - self.t;
        if dt.abs() < f64::EPSILON {
            return (self.x, self.y);
        }
        let r = (t - self.t) / dt;
        (
            self.x + r * (other.x - self.x),
            self.y + r * (other.y - self.y),
        )
    }

    /// Direction of travel from `self` to `other` in radians in `(-π, π]`.
    ///
    /// Returns `None` when the two locations coincide (direction undefined).
    pub fn direction_to(&self, other: &Point) -> Option<f64> {
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        if dx == 0.0 && dy == 0.0 {
            None
        } else {
            Some(dy.atan2(dx))
        }
    }

    /// Average speed of travel from `self` to `other` (distance over time).
    ///
    /// Returns `None` when the timestamps coincide (speed undefined).
    pub fn speed_to(&self, other: &Point) -> Option<f64> {
        let dt = other.t - self.t;
        if dt.abs() < f64::EPSILON {
            None
        } else {
            Some(self.dist(other) / dt)
        }
    }
}

/// Absolute angular difference between two directions, normalized to `[0, π]`.
#[inline]
pub fn angular_difference(a: f64, b: f64) -> f64 {
    let mut d = (a - b).abs() % (2.0 * std::f64::consts::PI);
    if d > std::f64::consts::PI {
        d = 2.0 * std::f64::consts::PI - d;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, 10.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(1.5, -2.0, 0.0);
        let b = Point::new(-3.0, 7.25, 5.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn interpolate_midpoint() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 20.0, 10.0);
        let (x, y) = a.interpolate_at(&b, 5.0);
        assert!((x - 5.0).abs() < 1e-12);
        assert!((y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn interpolate_at_endpoints() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(4.0, 6.0, 8.0);
        assert_eq!(a.interpolate_at(&b, 3.0), (1.0, 2.0));
        assert_eq!(a.interpolate_at(&b, 8.0), (4.0, 6.0));
    }

    #[test]
    fn interpolate_degenerate_time() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(4.0, 6.0, 3.0);
        // Zero-duration segment: convention is to return the start location.
        assert_eq!(a.interpolate_at(&b, 3.0), (1.0, 2.0));
    }

    #[test]
    fn interpolate_extrapolates_outside_range() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 0.0, 10.0);
        let (x, _) = a.interpolate_at(&b, 20.0);
        assert!((x - 20.0).abs() < 1e-12);
    }

    #[test]
    fn direction_cardinal() {
        let o = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(1.0, 0.0, 1.0);
        let n = Point::new(0.0, 1.0, 1.0);
        assert_eq!(o.direction_to(&e), Some(0.0));
        assert!((o.direction_to(&n).unwrap() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn direction_undefined_for_coincident_locations() {
        let a = Point::new(1.0, 1.0, 0.0);
        let b = Point::new(1.0, 1.0, 5.0);
        assert_eq!(a.direction_to(&b), None);
    }

    #[test]
    fn speed_basic_and_undefined() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(30.0, 40.0, 10.0);
        assert_eq!(a.speed_to(&b), Some(5.0));
        let c = Point::new(3.0, 4.0, 0.0);
        assert_eq!(a.speed_to(&c), None);
    }

    #[test]
    fn angular_difference_wraps() {
        assert!((angular_difference(-PI + 0.1, PI - 0.1) - 0.2).abs() < 1e-12);
        assert!((angular_difference(0.0, PI) - PI).abs() < 1e-12);
        assert_eq!(angular_difference(1.0, 1.0), 0.0);
    }

    #[test]
    fn angular_difference_symmetric() {
        let (a, b) = (0.3, -2.9);
        assert!((angular_difference(a, b) - angular_difference(b, a)).abs() < 1e-15);
    }
}
