//! Whole-trajectory similarity metrics: discrete Fréchet distance and
//! dynamic time warping.
//!
//! The paper's four measures score a simplification through anchor
//! segments; Fréchet and DTW are the standard *curve-to-curve* metrics used
//! across the trajectory literature to sanity-check that a simplified
//! trajectory still "is" the original. The harness reports them in the case
//! study, and they are useful for downstream users comparing arbitrary
//! trajectories (not just a trajectory against its own simplification).

use crate::point::Point;

/// Discrete Fréchet distance between two point sequences (the classic
/// O(n·m) dynamic program of Eiter & Mannila).
///
/// Returns 0 for two empty sequences and `+∞` when exactly one is empty.
pub fn frechet_distance(a: &[Point], b: &[Point]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    // Rolling-row DP over the coupling table.
    let m = b.len();
    let mut prev = vec![0.0f64; m];
    let mut cur = vec![0.0f64; m];
    for (i, pa) in a.iter().enumerate() {
        for (j, pb) in b.iter().enumerate() {
            let d = pa.dist(pb);
            cur[j] = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                d.max(cur[j - 1])
            } else if j == 0 {
                d.max(prev[j])
            } else {
                d.max(prev[j].min(prev[j - 1]).min(cur[j - 1]))
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

/// Dynamic-time-warping distance between two point sequences with
/// Euclidean ground distance and unit step weights (sum of matched
/// distances along the optimal warping path).
///
/// `window` optionally constrains the warp to a Sakoe–Chiba band of the
/// given half-width (|i·m/n − j| ≤ window), the usual speed/locality
/// control; `None` means unconstrained.
///
/// Returns 0 for two empty sequences and `+∞` when exactly one is empty or
/// the band admits no path.
pub fn dtw_distance(a: &[Point], b: &[Point], window: Option<usize>) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let (n, m) = (a.len(), b.len());
    let scale = m as f64 / n as f64;
    let band = |i: usize, j: usize| -> bool {
        match window {
            None => true,
            Some(w) => {
                let center = (i as f64 + 0.5) * scale - 0.5;
                (j as f64 - center).abs() <= w as f64
            }
        }
    };
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];
    for (i, pa) in a.iter().enumerate() {
        cur.fill(f64::INFINITY);
        for (j, pb) in b.iter().enumerate() {
            if !band(i, j) {
                continue;
            }
            let d = pa.dist(pb);
            let best_prev = if i == 0 && j == 0 {
                0.0
            } else {
                let mut best = f64::INFINITY;
                if i > 0 {
                    best = best.min(prev[j]);
                }
                if j > 0 {
                    best = best.min(cur[j - 1]);
                }
                if i > 0 && j > 0 {
                    best = best.min(prev[j - 1]);
                }
                best
            };
            cur[j] = d + best_prev;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as f64))
            .collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        assert_eq!(frechet_distance(&a, &a), 0.0);
        assert_eq!(dtw_distance(&a, &a, None), 0.0);
    }

    #[test]
    fn frechet_is_symmetric() {
        let a = pts(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(0.0, 2.0), (10.0, 3.0)]);
        assert_eq!(frechet_distance(&a, &b), frechet_distance(&b, &a));
    }

    #[test]
    fn frechet_parallel_lines() {
        // Two parallel horizontal lines 2 apart: Fréchet = 2.
        let a = pts(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(0.0, 2.0), (5.0, 2.0), (10.0, 2.0)]);
        assert!((frechet_distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frechet_dominates_each_endpoint_gap() {
        let a = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(0.0, 5.0), (10.0, 1.0)]);
        let f = frechet_distance(&a, &b);
        assert!(f >= 5.0 - 1e-12, "{f}");
    }

    #[test]
    fn discrete_frechet_couples_to_nearest_vertex() {
        // Discrete Fréchet has no interpolation: the sparse sequence's
        // vertices must absorb the dense one's, so the distance is the
        // worst point-to-nearest-vertex gap (here: x = 4 or 6 → 4), not 0
        // as the continuous Fréchet distance would give.
        let a = pts(&[
            (0.0, 0.0),
            (2.0, 0.0),
            (4.0, 0.0),
            (6.0, 0.0),
            (8.0, 0.0),
            (10.0, 0.0),
        ]);
        let b = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        assert!((frechet_distance(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_accumulates_along_the_path() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        // Diagonal matching: 3 pairs at distance 1.
        assert!((dtw_distance(&a, &b, None) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_window_restricts_warping() {
        // A big time shift needs warping; a tight band forbids it, so the
        // banded distance is at least the unconstrained one.
        let a = pts(&[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 0.0), (10.0, 0.0)]);
        let free = dtw_distance(&a, &b, None);
        let tight = dtw_distance(&a, &b, Some(0));
        assert!(tight >= free, "tight {tight} < free {free}");
        assert!(tight.is_finite()); // the diagonal is always inside the band
    }

    #[test]
    fn empty_sequence_conventions() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(frechet_distance(&[], &[]), 0.0);
        assert_eq!(dtw_distance(&[], &[], None), 0.0);
        assert_eq!(frechet_distance(&a, &[]), f64::INFINITY);
        assert_eq!(dtw_distance(&[], &a, Some(3)), f64::INFINITY);
    }

    #[test]
    fn simplification_keeps_frechet_small() {
        // Dropping near-collinear points barely moves the curve.
        let a: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64, (i as f64 * 0.1).sin() * 0.2, i as f64))
            .collect();
        let kept: Vec<Point> = a
            .iter()
            .step_by(7)
            .chain(std::iter::once(&a[49]))
            .copied()
            .collect();
        let f = frechet_distance(&a, &kept);
        // Discrete Fréchet is bounded by half the kept spacing (≤ 3.5 in x)
        // plus the curve's small amplitude.
        assert!(f < 4.0, "{f}");
    }

    #[test]
    fn frechet_monotone_under_refinement_of_same_polyline() {
        // Adding intermediate points of the same polyline cannot increase
        // the distance to the original by much (sanity, not an identity).
        let a: Vec<Point> = (0..30)
            .map(|i| Point::new(i as f64, (i % 5) as f64, i as f64))
            .collect();
        let coarse: Vec<Point> = a
            .iter()
            .step_by(10)
            .chain(std::iter::once(&a[29]))
            .copied()
            .collect();
        let fine: Vec<Point> = a
            .iter()
            .step_by(3)
            .chain(std::iter::once(&a[29]))
            .copied()
            .collect();
        assert!(frechet_distance(&a, &fine) <= frechet_distance(&a, &coarse) + 1e-9);
    }
}
