//! Cross-call memoization of anchor-range error statistics.
//!
//! [`ErrorBook`](crate::ErrorBook) recomputes [`RangeStats`] for heavily
//! overlapping anchor ranges: the greedy Bottom-Up / RLTS-batch loop previews
//! a merge with `merge_cost(j)` and, when it commits the drop, rescans the
//! *same* `(prev(j), next(j))` range in `set_segment`. A [`RangeMemo`] keyed
//! by `(trajectory id, range, measure, generation)` turns the second scan —
//! and every re-preview of a candidate whose neighbourhood did not change —
//! into an O(1) lookup.
//!
//! The contract (DESIGN.md §14): the original point sequence bound to a
//! trajectory id is immutable, so a cached [`RangeStats`] is a pure function
//! of its key and hits are bit-identical to recomputes. Owners that reuse an
//! id over *different* point data must call
//! [`RangeBinding::bump_generation`] — invalidation happens by changing the
//! key, never by mutating cached values.

use crate::cols::ColsView;
use crate::error::{Measure, RangeStats};
use std::sync::{Arc, Mutex};
use trajcache::{Cache, CacheStats, EvictPolicy, MemSize};

/// Ranges shorter than this many original-index steps are recomputed rather
/// than memoized: below it the kernel scan is cheaper than a hash lookup
/// (see `BENCH_kernels.json`: 8–37 ns per point vs ~100 ns per probe).
pub const MIN_MEMO_SPAN: u32 = 4;

/// Cache key for one anchor range's error statistics. `src` records how
/// `traj` was derived — an allocated id ([`SRC_ID`]) or a columnar content
/// fingerprint ([`SRC_FINGERPRINT`]) — so the two namespaces never alias
/// even when a fingerprint happens to equal an allocated id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RangeKey {
    traj: u64,
    generation: u64,
    s: u32,
    e: u32,
    measure: u8,
    src: u8,
}

/// `RangeKey::traj` is an id from [`RangeMemo::alloc_traj_id`].
const SRC_ID: u8 = 0;
/// `RangeKey::traj` is a [`fingerprint_cols`] content hash.
const SRC_FINGERPRINT: u8 = 1;

impl MemSize for RangeKey {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl MemSize for RangeStats {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

fn measure_tag(m: Measure) -> u8 {
    match m {
        Measure::Sed => 0,
        Measure::Ped => 1,
        Measure::Dad => 2,
        Measure::Sad => 3,
    }
}

/// Content fingerprint of a columnar view: FNV-1a over the length and the
/// bit pattern of every coordinate, streamed straight off the column
/// slices — no `Vec<Point>` materialisation. Two views over bit-identical
/// columns fingerprint identically, so books bound via
/// [`RangeBinding::for_cols`] share cached ranges across episodes without
/// coordinating id allocation.
pub fn fingerprint_cols(v: ColsView<'_>) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn eat(h: &mut u64, word: u64) {
        for b in word.to_le_bytes() {
            *h = (*h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    eat(&mut h, v.len() as u64);
    for i in 0..v.len() {
        eat(&mut h, v.xs[i].to_bits());
        eat(&mut h, v.ys[i].to_bits());
        eat(&mut h, v.ts[i].to_bits());
    }
    h
}

/// A process- or environment-wide pool of memoized anchor-range statistics,
/// shared by many [`ErrorBook`](crate::ErrorBook)s through a
/// [`SharedRangeMemo`] handle.
///
/// ```
/// use trajectory::memo::RangeMemo;
/// use trajectory::{ErrorBook, Point};
/// use trajectory::error::Measure;
///
/// let memo = RangeMemo::shared_default();
/// let pts: Vec<Point> = (0..12)
///     .map(|i| Point::new(i as f64, (i % 3) as f64, i as f64))
///     .collect();
/// let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Sed);
/// book.enable_memo(&memo);
/// book.drop(4);
/// book.drop(5);
/// let preview = book.merge_cost(6); // range (3, 7): computes and caches
/// let applied = book.drop(6);       // commits the same range: memo hit
/// assert_eq!(preview.to_bits(), applied.to_bits());
/// assert!(memo.lock().unwrap().stats().hits >= 1);
/// ```
#[derive(Debug)]
pub struct RangeMemo {
    cache: Cache<RangeKey, RangeStats>,
    next_traj: u64,
}

/// Shared handle to a [`RangeMemo`]; clone freely across books and episodes.
pub type SharedRangeMemo = Arc<Mutex<RangeMemo>>;

impl RangeMemo {
    /// Creates a memo bounded by `max_entries` entries and `max_bytes`
    /// approximate resident bytes under the given eviction policy.
    pub fn new(policy: EvictPolicy, max_entries: usize, max_bytes: usize) -> Self {
        RangeMemo {
            cache: Cache::new(policy, max_entries, max_bytes),
            next_traj: 0,
        }
    }

    /// A shared LRU memo with defaults sized for training workloads
    /// (64 Ki entries, 8 MiB).
    pub fn shared_default() -> SharedRangeMemo {
        Arc::new(Mutex::new(RangeMemo::new(
            EvictPolicy::Lru,
            1 << 16,
            8 << 20,
        )))
    }

    /// Wraps a memo into its shared handle.
    pub fn into_shared(self) -> SharedRangeMemo {
        Arc::new(Mutex::new(self))
    }

    fn alloc_traj(&mut self) -> u64 {
        let id = self.next_traj;
        self.next_traj += 1;
        id
    }

    /// Reserves a trajectory id for explicit sharing via
    /// [`RangeBinding::with_traj`]. Ids from this allocator never collide
    /// with the ones [`RangeBinding::new`] hands out internally.
    pub fn alloc_traj_id(&mut self) -> u64 {
        self.alloc_traj()
    }

    /// Statistics snapshot (hits, misses, evictions, resident figures).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Exports stats into the `cache.*` obskit family under `cache=<name>`.
    pub fn publish(&mut self, name: &str) {
        self.cache.publish(name);
    }
}

/// One [`ErrorBook`](crate::ErrorBook)'s binding into a shared
/// [`RangeMemo`]: a trajectory id, the measure tag, and the current
/// invalidation generation.
#[derive(Debug, Clone)]
pub struct RangeBinding {
    shared: SharedRangeMemo,
    traj: u64,
    generation: u64,
    measure: u8,
    src: u8,
}

impl RangeBinding {
    /// Binds a fresh trajectory id in `shared` for a book maintaining
    /// `measure`.
    pub fn new(shared: &SharedRangeMemo, measure: Measure) -> Self {
        let traj = shared.lock().expect("range memo poisoned").alloc_traj();
        RangeBinding {
            shared: Arc::clone(shared),
            traj,
            generation: 0,
            measure: measure_tag(measure),
            src: SRC_ID,
        }
    }

    /// Binds an explicit trajectory id (allocated via
    /// [`RangeMemo::alloc_traj_id`]) so several books over the *same*
    /// immutable point sequence share cached ranges — the cross-episode
    /// path of the batch training environment.
    pub fn with_traj(shared: &SharedRangeMemo, measure: Measure, traj: u64) -> Self {
        RangeBinding {
            shared: Arc::clone(shared),
            traj,
            generation: 0,
            measure: measure_tag(measure),
            src: SRC_ID,
        }
    }

    /// Binds a columnar view by content: the trajectory component of the
    /// key is [`fingerprint_cols`] of the view, in a namespace disjoint
    /// from allocated ids. Rebinding the *same* columns — even from
    /// another view, book, or episode — lands on the same cached ranges;
    /// no `Vec<Point>` clone and no id coordination is required. The
    /// immutability contract carries over: the columns a fingerprint was
    /// taken from must not change while entries for it are live (a 64-bit
    /// content hash stands in for identity here, so distinct columns are
    /// assumed not to collide).
    pub fn for_cols(shared: &SharedRangeMemo, measure: Measure, v: ColsView<'_>) -> Self {
        RangeBinding {
            shared: Arc::clone(shared),
            traj: fingerprint_cols(v),
            generation: 0,
            measure: measure_tag(measure),
            src: SRC_FINGERPRINT,
        }
    }

    /// Invalidates every range cached under this binding by bumping the
    /// generation component of future keys. Old entries age out via the
    /// memo's eviction policy.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Looks up the stats of range `(s, e)`, or computes-and-caches them.
    /// Short ranges (`e - s < `[`MIN_MEMO_SPAN`]) bypass the memo entirely.
    pub fn stats_for(
        &self,
        s: usize,
        e: usize,
        compute: impl FnOnce() -> RangeStats,
    ) -> RangeStats {
        if (e - s) < MIN_MEMO_SPAN as usize {
            return compute();
        }
        let key = RangeKey {
            traj: self.traj,
            generation: self.generation,
            s: s as u32,
            e: e as u32,
            measure: self.measure,
            src: self.src,
        };
        let mut memo = self.shared.lock().expect("range memo poisoned");
        memo.cache.get_or_insert_with(&key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Aggregation;
    use crate::{ErrorBook, Point};

    /// Deterministic xorshift trajectory (same scheme as the kernel
    /// equivalence sweeps) so this module needs no external crates.
    fn lcg_points(seed: u64, n: usize) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = 0.0;
        (0..n)
            .map(|_| {
                t += 0.25 + next() * 2.0;
                Point::new(next() * 20.0 - 10.0, next() * 20.0 - 10.0, t)
            })
            .collect()
    }

    #[test]
    fn memoized_book_is_bit_identical_over_random_edits() {
        for seed in 1..12u64 {
            for m in Measure::ALL {
                let pts = lcg_points(seed ^ (measure_tag(m) as u64) << 32, 40);
                let memo = RangeMemo::shared_default();
                let mut plain = ErrorBook::with_prefix(pts.as_slice(), m, 8);
                let mut cached = ErrorBook::with_prefix(pts.as_slice(), m, 8);
                cached.enable_memo(&memo);
                let mut state = seed | 1;
                for _ in 0..60 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let roll = state % 3;
                    if roll == 0 && plain.last_index() + 1 < pts.len() {
                        let skip = (state >> 17) as usize % 3;
                        let i = (plain.last_index() + 1 + skip).min(pts.len() - 1);
                        let a = plain.append(i);
                        let b = cached.append(i);
                        assert_eq!(a.to_bits(), b.to_bits(), "append {m}");
                    } else {
                        // Pick a random kept interior point, preview, drop.
                        let kept = plain.kept_indices();
                        if kept.len() < 3 {
                            continue;
                        }
                        let j = kept[1 + (state >> 23) as usize % (kept.len() - 2)];
                        let pa = plain.merge_cost(j);
                        let pb = cached.merge_cost(j);
                        assert_eq!(pa.to_bits(), pb.to_bits(), "merge_cost {m}");
                        let a = plain.drop(j);
                        let b = cached.drop(j);
                        assert_eq!(a.to_bits(), b.to_bits(), "drop {m}");
                    }
                    for agg in [Aggregation::Max, Aggregation::Mean] {
                        assert_eq!(
                            plain.error(agg).to_bits(),
                            cached.error(agg).to_bits(),
                            "{m} {agg:?}"
                        );
                    }
                }
                let stats = memo.lock().unwrap().stats();
                assert!(stats.hits > 0, "workload must actually hit the memo");
            }
        }
    }

    #[test]
    fn generation_bump_changes_keys() {
        let memo = RangeMemo::shared_default();
        let mut b = RangeBinding::new(&memo, Measure::Sed);
        let one = RangeStats {
            max: 1.0,
            sum: 1.0,
            count: 1,
        };
        let got = b.stats_for(0, 9, || one);
        assert_eq!(got.max, 1.0);
        b.bump_generation();
        // Same range now misses: the generation is part of the key.
        let two = b.stats_for(0, 9, || RangeStats {
            max: 2.0,
            sum: 2.0,
            count: 1,
        });
        assert_eq!(two.max, 2.0);
    }

    #[test]
    fn short_ranges_bypass_the_memo() {
        let memo = RangeMemo::shared_default();
        let b = RangeBinding::new(&memo, Measure::Sed);
        b.stats_for(3, 5, RangeStats::default);
        assert_eq!(memo.lock().unwrap().stats().misses, 0);
        assert_eq!(memo.lock().unwrap().stats().inserts, 0);
    }

    #[test]
    fn cols_binding_is_bit_identical_cache_on_and_off() {
        use crate::cols::TrajCols;
        use crate::error::{range_error_stats_cols, Sed};

        let cols = TrajCols::from_points(&lcg_points(9, 48));
        let v = cols.view();
        let memo = RangeMemo::shared_default();
        let bind = RangeBinding::for_cols(&memo, Measure::Sed, v);
        for (s, e) in [(0, 12), (3, 20), (0, 12), (12, 47), (3, 20)] {
            let cached = bind.stats_for(s, e, || range_error_stats_cols::<Sed>(v, s, e));
            let plain = range_error_stats_cols::<Sed>(v, s, e);
            assert_eq!(cached.max.to_bits(), plain.max.to_bits());
            assert_eq!(cached.sum.to_bits(), plain.sum.to_bits());
            assert_eq!(cached.count, plain.count);
        }
        let stats = memo.lock().unwrap().stats();
        assert!(stats.hits >= 2, "repeated ranges must hit");
    }

    #[test]
    fn same_columns_share_entries_across_bindings() {
        use crate::cols::TrajCols;

        let cols = TrajCols::from_points(&lcg_points(5, 32));
        let twin = TrajCols::from_points(&lcg_points(5, 32));
        let other = TrajCols::from_points(&lcg_points(6, 32));
        assert_eq!(fingerprint_cols(cols.view()), fingerprint_cols(twin.view()));
        assert_ne!(
            fingerprint_cols(cols.view()),
            fingerprint_cols(other.view())
        );

        let memo = RangeMemo::shared_default();
        let one = RangeStats {
            max: 1.0,
            sum: 1.0,
            count: 1,
        };
        let a = RangeBinding::for_cols(&memo, Measure::Sed, cols.view());
        let b = RangeBinding::for_cols(&memo, Measure::Sed, twin.view());
        a.stats_for(0, 9, || one);
        // A fresh binding over bit-identical columns reads the cached
        // value: the fallback (which would return 2.0) must not run.
        let got = b.stats_for(0, 9, || RangeStats {
            max: 2.0,
            sum: 2.0,
            count: 1,
        });
        assert_eq!(got.max, 1.0, "twin columns must share cache entries");
        // Different columns, and id-bound bindings with a colliding id,
        // stay disjoint.
        let c = RangeBinding::for_cols(&memo, Measure::Sed, other.view());
        let vc = c.stats_for(0, 9, || RangeStats {
            max: 3.0,
            sum: 3.0,
            count: 1,
        });
        assert_eq!(vc.max, 3.0);
        let id_bound = RangeBinding::with_traj(&memo, Measure::Sed, fingerprint_cols(cols.view()));
        let vd = id_bound.stats_for(0, 9, || RangeStats {
            max: 4.0,
            sum: 4.0,
            count: 1,
        });
        assert_eq!(vd.max, 4.0, "id and fingerprint namespaces must not alias");
    }

    #[test]
    fn distinct_books_get_distinct_traj_ids() {
        let memo = RangeMemo::shared_default();
        let a = RangeBinding::new(&memo, Measure::Sed);
        let b = RangeBinding::new(&memo, Measure::Sed);
        let va = a.stats_for(0, 9, || RangeStats {
            max: 1.0,
            sum: 1.0,
            count: 1,
        });
        let vb = b.stats_for(0, 9, || RangeStats {
            max: 2.0,
            sum: 2.0,
            count: 1,
        });
        assert_eq!(va.max, 1.0);
        assert_eq!(vb.max, 2.0, "same range under another id must not alias");
    }
}
