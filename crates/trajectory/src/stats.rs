//! Dataset statistics in the format of the paper's Table I.

use crate::traj::Trajectory;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trajectory dataset (paper Table I rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub trajectories: usize,
    /// Total number of points over all trajectories.
    pub total_points: usize,
    /// Average number of points per trajectory.
    pub avg_points: f64,
    /// Minimum observed inter-point sampling interval (seconds).
    pub min_interval: f64,
    /// Maximum observed inter-point sampling interval (seconds).
    pub max_interval: f64,
    /// Mean inter-point sampling interval (seconds).
    pub mean_interval: f64,
    /// Mean distance between consecutive points.
    pub mean_hop_distance: f64,
}

impl DatasetStats {
    /// Computes statistics over a dataset of trajectories.
    pub fn compute(dataset: &[Trajectory]) -> DatasetStats {
        let trajectories = dataset.len();
        let total_points: usize = dataset.iter().map(|t| t.len()).sum();
        let mut min_interval = f64::INFINITY;
        let mut max_interval = f64::NEG_INFINITY;
        let mut interval_sum = 0.0;
        let mut hop_sum = 0.0;
        let mut hops = 0usize;
        for t in dataset {
            for w in t.points().windows(2) {
                let dt = w[1].t - w[0].t;
                min_interval = min_interval.min(dt);
                max_interval = max_interval.max(dt);
                interval_sum += dt;
                hop_sum += w[0].dist(&w[1]);
                hops += 1;
            }
        }
        let avg_points = if trajectories == 0 {
            0.0
        } else {
            total_points as f64 / trajectories as f64
        };
        let (min_interval, max_interval) = if hops == 0 {
            (0.0, 0.0)
        } else {
            (min_interval, max_interval)
        };
        let denom = hops.max(1) as f64;
        DatasetStats {
            trajectories,
            total_points,
            avg_points,
            min_interval,
            max_interval,
            mean_interval: interval_sum / denom,
            mean_hop_distance: hop_sum / denom,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# of trajectories       {}", self.trajectories)?;
        writeln!(f, "total # of points       {}", self.total_points)?;
        writeln!(f, "avg points / trajectory {:.0}", self.avg_points)?;
        writeln!(
            f,
            "sampling rate           {:.0}s ~ {:.0}s (mean {:.1}s)",
            self.min_interval, self.max_interval, self.mean_interval
        )?;
        write!(f, "average distance        {:.2}m", self.mean_hop_distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn traj(step_t: f64, step_x: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| Point::new(i as f64 * step_x, 0.0, i as f64 * step_t))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn stats_of_uniform_dataset() {
        let data = vec![traj(2.0, 3.0, 5), traj(2.0, 3.0, 5)];
        let s = DatasetStats::compute(&data);
        assert_eq!(s.trajectories, 2);
        assert_eq!(s.total_points, 10);
        assert_eq!(s.avg_points, 5.0);
        assert_eq!(s.min_interval, 2.0);
        assert_eq!(s.max_interval, 2.0);
        assert!((s.mean_hop_distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_mixed_intervals() {
        let t = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 6.0)]).unwrap();
        let s = DatasetStats::compute(&[t]);
        assert_eq!(s.min_interval, 1.0);
        assert_eq!(s.max_interval, 5.0);
        assert!((s.mean_interval - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_dataset() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.trajectories, 0);
        assert_eq!(s.total_points, 0);
        assert_eq!(s.mean_hop_distance, 0.0);
        assert_eq!(s.min_interval, 0.0);
    }

    #[test]
    fn display_renders() {
        let s = DatasetStats::compute(&[traj(1.0, 1.0, 3)]);
        let text = s.to_string();
        assert!(text.contains("# of trajectories       1"));
    }
}
