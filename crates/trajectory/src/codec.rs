//! Compact lossy trajectory coding: quantization + delta + zigzag varint.
//!
//! Simplification (lossy point *selection*) and coding (lossy point
//! *representation*) compose: a sensor first simplifies its buffer, then
//! encodes the survivors for the uplink. GPS fixes are noisy at the
//! meter level anyway, so quantizing to a sub-noise resolution costs
//! nothing semantically while delta + varint coding shrinks smooth
//! trajectories by an order of magnitude compared to raw `3 × f64`.
//!
//! # Example
//!
//! ```
//! use trajectory::codec::Codec;
//! use trajectory::Trajectory;
//!
//! let traj = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (12.3, 4.5, 10.0)]).unwrap();
//! let codec = Codec::new(0.1, 1.0); // 10 cm, 1 s resolution
//! let bytes = codec.encode(&traj);
//! let back = codec.decode(bytes).unwrap();
//! assert!((back[1].x - 12.3).abs() <= 0.05);
//! ```

use crate::io::IoError;
use crate::point::Point;
use crate::traj::Trajectory;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag identifying the codec format.
const MAGIC: u32 = 0x524C_5451; // "RLTQ"
/// Codec format version.
const VERSION: u16 = 1;

/// A quantizing delta codec with configurable spatial and temporal
/// resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Codec {
    /// Spatial resolution (same unit as coordinates; decoded positions are
    /// within ±resolution/2 per axis).
    pub spatial_resolution: f64,
    /// Temporal resolution in seconds.
    pub time_resolution: f64,
}

impl Codec {
    /// Creates a codec with the given resolutions.
    ///
    /// # Panics
    /// Panics if either resolution is not positive and finite.
    pub fn new(spatial_resolution: f64, time_resolution: f64) -> Self {
        assert!(
            spatial_resolution > 0.0 && spatial_resolution.is_finite(),
            "spatial resolution must be positive"
        );
        assert!(
            time_resolution > 0.0 && time_resolution.is_finite(),
            "time resolution must be positive"
        );
        Codec { spatial_resolution, time_resolution }
    }

    /// Encodes a trajectory. Layout: magic | version | resolutions (2 × f64)
    /// | count (varint) | per point: zigzag-varint deltas of the quantized
    /// `(x, y, t)`.
    pub fn encode(&self, traj: &Trajectory) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + traj.len() * 6);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_f64(self.spatial_resolution);
        buf.put_f64(self.time_resolution);
        put_varint(&mut buf, traj.len() as u64);
        let mut prev = (0i64, 0i64, 0i64);
        for p in traj {
            let q = self.quantize(p);
            put_varint(&mut buf, zigzag(q.0 - prev.0));
            put_varint(&mut buf, zigzag(q.1 - prev.1));
            put_varint(&mut buf, zigzag(q.2 - prev.2));
            prev = q;
        }
        buf.freeze()
    }

    /// Decodes a payload produced by [`Codec::encode`] (with any
    /// resolution — the payload carries its own).
    pub fn decode(&self, mut buf: Bytes) -> Result<Trajectory, IoError> {
        if buf.remaining() < 4 + 2 + 16 {
            return Err(IoError::Malformed("codec header truncated"));
        }
        if buf.get_u32() != MAGIC {
            return Err(IoError::Malformed("bad codec magic"));
        }
        if buf.get_u16() != VERSION {
            return Err(IoError::Malformed("unsupported codec version"));
        }
        let sres = buf.get_f64();
        let tres = buf.get_f64();
        if !(sres > 0.0 && sres.is_finite() && tres > 0.0 && tres.is_finite()) {
            return Err(IoError::Malformed("invalid resolutions"));
        }
        let count = get_varint(&mut buf).ok_or(IoError::Malformed("count truncated"))? as usize;
        let mut pts = Vec::with_capacity(count.min(1 << 24));
        let mut prev = (0i64, 0i64, 0i64);
        for _ in 0..count {
            let dx = unzigzag(get_varint(&mut buf).ok_or(IoError::Malformed("point truncated"))?);
            let dy = unzigzag(get_varint(&mut buf).ok_or(IoError::Malformed("point truncated"))?);
            let dt = unzigzag(get_varint(&mut buf).ok_or(IoError::Malformed("point truncated"))?);
            prev = (prev.0 + dx, prev.1 + dy, prev.2 + dt);
            pts.push(Point::new(
                prev.0 as f64 * sres,
                prev.1 as f64 * sres,
                prev.2 as f64 * tres,
            ));
        }
        if buf.has_remaining() {
            return Err(IoError::Malformed("trailing bytes after codec payload"));
        }
        Ok(Trajectory::new(pts)?)
    }

    /// Maximum per-axis position error introduced by quantization.
    pub fn spatial_error_bound(&self) -> f64 {
        self.spatial_resolution / 2.0
    }

    fn quantize(&self, p: &Point) -> (i64, i64, i64) {
        (
            (p.x / self.spatial_resolution).round() as i64,
            (p.y / self.spatial_resolution).round() as i64,
            (p.t / self.time_resolution).round() as i64,
        )
    }
}

/// Zigzag-encodes a signed integer for varint coding.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128 unsigned varint.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 unsigned varint; `None` on truncation or overflow.
fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let f = i as f64;
                    Point::new(f * 8.0, (f * 0.1).sin() * 30.0, f * 5.0)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes), Some(v));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let mut cut = buf.freeze().slice(0..3);
        assert_eq!(get_varint(&mut cut), None);
    }

    #[test]
    fn roundtrip_within_resolution() {
        let traj = smooth(200);
        let codec = Codec::new(0.5, 1.0);
        let back = codec.decode(codec.encode(&traj)).unwrap();
        assert_eq!(back.len(), traj.len());
        for (a, b) in back.iter().zip(traj.iter()) {
            assert!((a.x - b.x).abs() <= 0.25 + 1e-12);
            assert!((a.y - b.y).abs() <= 0.25 + 1e-12);
            assert!((a.t - b.t).abs() <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn smooth_trajectories_compress_well() {
        let traj = smooth(1000);
        let codec = Codec::new(0.1, 1.0);
        let encoded = codec.encode(&traj).len();
        let raw = traj.len() * 24;
        assert!(
            encoded * 3 < raw,
            "expected ≥3x compression: {encoded} vs raw {raw}"
        );
    }

    #[test]
    fn coarser_resolution_is_smaller() {
        let traj = smooth(500);
        let fine = Codec::new(0.01, 0.1).encode(&traj).len();
        let coarse = Codec::new(1.0, 10.0).encode(&traj).len();
        assert!(coarse < fine, "coarse {coarse} !< fine {fine}");
    }

    #[test]
    fn decode_uses_payload_resolution_not_decoder_config() {
        let traj = smooth(50);
        let encoder = Codec::new(0.5, 1.0);
        let decoder = Codec::new(100.0, 100.0); // should not matter
        let back = decoder.decode(encoder.encode(&traj)).unwrap();
        for (a, b) in back.iter().zip(traj.iter()) {
            assert!((a.x - b.x).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn rejects_corruption() {
        let traj = smooth(20);
        let codec = Codec::new(0.5, 1.0);
        let good = codec.encode(&traj);
        assert!(codec.decode(good.slice(0..10)).is_err());
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0x55;
        assert!(codec.decode(bad.freeze()).is_err());
        let mut trailing = BytesMut::from(&good[..]);
        trailing.put_u8(7);
        assert!(codec.decode(trailing.freeze()).is_err());
    }

    #[test]
    fn empty_trajectory() {
        let codec = Codec::new(1.0, 1.0);
        let empty = Trajectory::new(vec![]).unwrap();
        assert_eq!(codec.decode(codec.encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let traj = Trajectory::from_xyt(&[(-100.5, -200.25, 0.0), (-90.0, -190.0, 7.0)]).unwrap();
        let codec = Codec::new(0.25, 1.0);
        let back = codec.decode(codec.encode(&traj)).unwrap();
        assert!((back[0].x + 100.5).abs() <= 0.125 + 1e-12);
        assert!((back[1].y + 190.0).abs() <= 0.125 + 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = Codec::new(0.0, 1.0);
    }
}
