//! Compact lossy trajectory coding: quantization + delta + zigzag varint.
//!
//! Simplification (lossy point *selection*) and coding (lossy point
//! *representation*) compose: a sensor first simplifies its buffer, then
//! encodes the survivors for the uplink. GPS fixes are noisy at the
//! meter level anyway, so quantizing to a sub-noise resolution costs
//! nothing semantically while delta + varint coding shrinks smooth
//! trajectories by an order of magnitude compared to raw `3 × f64`.
//!
//! # Example
//!
//! ```
//! use trajectory::codec::Codec;
//! use trajectory::Trajectory;
//!
//! let traj = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (12.3, 4.5, 10.0)]).unwrap();
//! let codec = Codec::new(0.1, 1.0); // 10 cm, 1 s resolution
//! let bytes = codec.encode(&traj);
//! let back = codec.decode(bytes).unwrap();
//! assert!((back[1].x - 12.3).abs() <= 0.05);
//! ```

use crate::io::IoError;
use crate::point::Point;
use crate::traj::Trajectory;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag identifying the codec format.
const MAGIC: u32 = 0x524C_5451; // "RLTQ"
/// Codec format version.
const VERSION: u16 = 1;
/// Magic tag identifying the *framed* (v2) codec format: the v1 body plus a
/// sequence number, first/last timestamps, and a trailing CRC32.
const FRAME_MAGIC: u32 = 0x524C_5446; // "RLTF"
/// Framed codec format version.
const FRAME_VERSION: u16 = 2;

/// Per-packet framing metadata carried by v2 payloads.
///
/// A lossy uplink can drop, replay, and reorder packets; the sequence
/// number lets a receiver detect all three, and the first/last timestamps
/// describe the span without decoding the body. The trailing CRC32 (over
/// every preceding byte of the frame) turns silent corruption into a
/// decode error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameMeta {
    /// Per-stream packet sequence number (assigned by the sender).
    pub seq: u32,
    /// Timestamp of the first encoded point (0.0 for an empty payload).
    pub first_t: f64,
    /// Timestamp of the last encoded point (0.0 for an empty payload).
    pub last_t: f64,
}

/// A quantizing delta codec with configurable spatial and temporal
/// resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Codec {
    /// Spatial resolution (same unit as coordinates; decoded positions are
    /// within ±resolution/2 per axis).
    pub spatial_resolution: f64,
    /// Temporal resolution in seconds.
    pub time_resolution: f64,
}

impl Codec {
    /// Creates a codec with the given resolutions.
    ///
    /// # Panics
    /// Panics if either resolution is not positive and finite.
    pub fn new(spatial_resolution: f64, time_resolution: f64) -> Self {
        assert!(
            spatial_resolution > 0.0 && spatial_resolution.is_finite(),
            "spatial resolution must be positive"
        );
        assert!(
            time_resolution > 0.0 && time_resolution.is_finite(),
            "time resolution must be positive"
        );
        Codec {
            spatial_resolution,
            time_resolution,
        }
    }

    /// Encodes a trajectory. Layout: magic | version | resolutions (2 × f64)
    /// | count (varint) | per point: zigzag-varint deltas of the quantized
    /// `(x, y, t)`.
    pub fn encode(&self, traj: &Trajectory) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + traj.len() * 6);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        self.encode_body(&mut buf, traj);
        buf.freeze()
    }

    /// Encodes a trajectory in the framed (v2) format for lossy uplinks.
    /// Layout: frame magic | version | seq (u32) | first/last timestamps
    /// (2 × f64) | resolutions (2 × f64) | count (varint) | deltas | CRC32
    /// (u32, over all preceding bytes).
    pub fn encode_framed(&self, seq: u32, traj: &Trajectory) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + traj.len() * 6);
        buf.put_u32(FRAME_MAGIC);
        buf.put_u16(FRAME_VERSION);
        buf.put_u32(seq);
        let (first_t, last_t) = match (traj.first(), traj.last()) {
            (Some(f), Some(l)) => (f.t, l.t),
            _ => (0.0, 0.0),
        };
        buf.put_f64(first_t);
        buf.put_f64(last_t);
        self.encode_body(&mut buf, traj);
        let crc = crc32(&buf);
        buf.put_u32(crc);
        buf.freeze()
    }

    /// Decodes a payload produced by [`Codec::encode`] or
    /// [`Codec::encode_framed`] (with any resolution — the payload carries
    /// its own), discarding any frame metadata.
    pub fn decode(&self, buf: Bytes) -> Result<Trajectory, IoError> {
        Ok(self.decode_framed(buf)?.0)
    }

    /// Decodes either frame version, returning the trajectory plus the v2
    /// frame metadata (`None` for v1 payloads). For v2 payloads the CRC32
    /// is verified before anything else is trusted.
    pub fn decode_framed(
        &self,
        mut buf: Bytes,
    ) -> Result<(Trajectory, Option<FrameMeta>), IoError> {
        if buf.remaining() < 4 + 2 {
            return Err(IoError::Malformed("codec header truncated"));
        }
        let raw = buf.clone();
        match buf.get_u32() {
            MAGIC => {
                if buf.get_u16() != VERSION {
                    return Err(IoError::Malformed("unsupported codec version"));
                }
                Ok((self.decode_body(&mut buf, 0)?, None))
            }
            FRAME_MAGIC => {
                if buf.get_u16() != FRAME_VERSION {
                    return Err(IoError::Malformed("unsupported frame version"));
                }
                // magic+version (6) | seq (4) | timestamps (16) |
                // resolutions (16) | count (≥ 1) | crc (4).
                if raw.len() < 6 + 4 + 16 + 16 + 1 + 4 {
                    return Err(IoError::Malformed("frame truncated"));
                }
                let body_len = raw.len() - 4;
                let stored = u32::from_be_bytes([
                    raw[body_len],
                    raw[body_len + 1],
                    raw[body_len + 2],
                    raw[body_len + 3],
                ]);
                if crc32(&raw[..body_len]) != stored {
                    return Err(IoError::Malformed("frame checksum mismatch"));
                }
                let seq = buf.get_u32();
                let first_t = buf.get_f64();
                let last_t = buf.get_f64();
                let traj = self.decode_body(&mut buf, 4)?;
                Ok((
                    traj,
                    Some(FrameMeta {
                        seq,
                        first_t,
                        last_t,
                    }),
                ))
            }
            _ => Err(IoError::Malformed("bad codec magic")),
        }
    }

    /// Writes resolutions, count, and zigzag-varint deltas.
    fn encode_body(&self, buf: &mut BytesMut, traj: &Trajectory) {
        buf.put_f64(self.spatial_resolution);
        buf.put_f64(self.time_resolution);
        put_varint(buf, traj.len() as u64);
        let mut prev = (0i64, 0i64, 0i64);
        for p in traj {
            let q = self.quantize(p);
            put_varint(buf, zigzag(q.0 - prev.0));
            put_varint(buf, zigzag(q.1 - prev.1));
            put_varint(buf, zigzag(q.2 - prev.2));
            prev = q;
        }
    }

    /// Reads resolutions, count, and deltas, requiring exactly `trailing`
    /// bytes (the v2 CRC) to remain afterwards.
    fn decode_body(&self, buf: &mut Bytes, trailing: usize) -> Result<Trajectory, IoError> {
        if buf.remaining() < 16 {
            return Err(IoError::Malformed("codec header truncated"));
        }
        let sres = buf.get_f64();
        let tres = buf.get_f64();
        if !(sres > 0.0 && sres.is_finite() && tres > 0.0 && tres.is_finite()) {
            return Err(IoError::Malformed("invalid resolutions"));
        }
        let count = get_varint(buf).ok_or(IoError::Malformed("count truncated"))? as usize;
        let mut pts = Vec::with_capacity(count.min(1 << 24));
        let mut prev = (0i64, 0i64, 0i64);
        for _ in 0..count {
            let dx = unzigzag(get_varint(buf).ok_or(IoError::Malformed("point truncated"))?);
            let dy = unzigzag(get_varint(buf).ok_or(IoError::Malformed("point truncated"))?);
            let dt = unzigzag(get_varint(buf).ok_or(IoError::Malformed("point truncated"))?);
            // Wrapping: corrupt v1 deltas must surface as a decode error
            // (non-finite / non-monotone points), never as an overflow panic.
            prev = (
                prev.0.wrapping_add(dx),
                prev.1.wrapping_add(dy),
                prev.2.wrapping_add(dt),
            );
            pts.push(Point::new(
                prev.0 as f64 * sres,
                prev.1 as f64 * sres,
                prev.2 as f64 * tres,
            ));
        }
        if buf.remaining() != trailing {
            return Err(IoError::Malformed("trailing bytes after codec payload"));
        }
        Ok(Trajectory::new(pts)?)
    }

    /// Maximum per-axis position error introduced by quantization.
    pub fn spatial_error_bound(&self) -> f64 {
        self.spatial_resolution / 2.0
    }

    fn quantize(&self, p: &Point) -> (i64, i64, i64) {
        (
            (p.x / self.spatial_resolution).round() as i64,
            (p.y / self.spatial_resolution).round() as i64,
            (p.t / self.time_resolution).round() as i64,
        )
    }
}

/// CRC32 (IEEE 802.3, reflected, poly `0xEDB88320`) over a byte slice.
/// Bitwise implementation: frame payloads are small and this keeps the
/// codec dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Zigzag-encodes a signed integer for varint coding.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128 unsigned varint.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 unsigned varint; `None` on truncation or overflow.
fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let f = i as f64;
                    Point::new(f * 8.0, (f * 0.1).sin() * 30.0, f * 5.0)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes), Some(v));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let mut cut = buf.freeze().slice(0..3);
        assert_eq!(get_varint(&mut cut), None);
    }

    #[test]
    fn roundtrip_within_resolution() {
        let traj = smooth(200);
        let codec = Codec::new(0.5, 1.0);
        let back = codec.decode(codec.encode(&traj)).unwrap();
        assert_eq!(back.len(), traj.len());
        for (a, b) in back.iter().zip(traj.iter()) {
            assert!((a.x - b.x).abs() <= 0.25 + 1e-12);
            assert!((a.y - b.y).abs() <= 0.25 + 1e-12);
            assert!((a.t - b.t).abs() <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn smooth_trajectories_compress_well() {
        let traj = smooth(1000);
        let codec = Codec::new(0.1, 1.0);
        let encoded = codec.encode(&traj).len();
        let raw = traj.len() * 24;
        assert!(
            encoded * 3 < raw,
            "expected ≥3x compression: {encoded} vs raw {raw}"
        );
    }

    #[test]
    fn coarser_resolution_is_smaller() {
        let traj = smooth(500);
        let fine = Codec::new(0.01, 0.1).encode(&traj).len();
        let coarse = Codec::new(1.0, 10.0).encode(&traj).len();
        assert!(coarse < fine, "coarse {coarse} !< fine {fine}");
    }

    #[test]
    fn decode_uses_payload_resolution_not_decoder_config() {
        let traj = smooth(50);
        let encoder = Codec::new(0.5, 1.0);
        let decoder = Codec::new(100.0, 100.0); // should not matter
        let back = decoder.decode(encoder.encode(&traj)).unwrap();
        for (a, b) in back.iter().zip(traj.iter()) {
            assert!((a.x - b.x).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn rejects_corruption() {
        let traj = smooth(20);
        let codec = Codec::new(0.5, 1.0);
        let good = codec.encode(&traj);
        assert!(codec.decode(good.slice(0..10)).is_err());
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0x55;
        assert!(codec.decode(bad.freeze()).is_err());
        let mut trailing = BytesMut::from(&good[..]);
        trailing.put_u8(7);
        assert!(codec.decode(trailing.freeze()).is_err());
    }

    #[test]
    fn empty_trajectory() {
        let codec = Codec::new(1.0, 1.0);
        let empty = Trajectory::new(vec![]).unwrap();
        assert_eq!(codec.decode(codec.encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let traj = Trajectory::from_xyt(&[(-100.5, -200.25, 0.0), (-90.0, -190.0, 7.0)]).unwrap();
        let codec = Codec::new(0.25, 1.0);
        let back = codec.decode(codec.encode(&traj)).unwrap();
        assert!((back[0].x + 100.5).abs() <= 0.125 + 1e-12);
        assert!((back[1].y + 190.0).abs() <= 0.125 + 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let _ = Codec::new(0.0, 1.0);
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framed_roundtrip_carries_metadata() {
        let traj = smooth(40);
        let codec = Codec::new(0.5, 1.0);
        let (back, meta) = codec.decode_framed(codec.encode_framed(17, &traj)).unwrap();
        let meta = meta.expect("v2 payloads carry frame metadata");
        assert_eq!(meta.seq, 17);
        assert_eq!(meta.first_t, traj[0].t);
        assert_eq!(meta.last_t, traj[traj.len() - 1].t);
        assert_eq!(back.len(), traj.len());
        for (a, b) in back.iter().zip(traj.iter()) {
            assert!((a.x - b.x).abs() <= 0.25 + 1e-12);
            assert!((a.t - b.t).abs() <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn framed_empty_trajectory_roundtrip() {
        let codec = Codec::new(1.0, 1.0);
        let empty = Trajectory::new(vec![]).unwrap();
        let (back, meta) = codec.decode_framed(codec.encode_framed(3, &empty)).unwrap();
        assert_eq!(back, empty);
        assert_eq!(meta.unwrap().seq, 3);
    }

    #[test]
    fn v1_payload_decodes_without_metadata() {
        let traj = smooth(10);
        let codec = Codec::new(0.5, 1.0);
        let (back, meta) = codec.decode_framed(codec.encode(&traj)).unwrap();
        assert!(meta.is_none());
        assert_eq!(back.len(), traj.len());
    }

    #[test]
    fn framed_rejects_any_single_byte_corruption() {
        let traj = smooth(15);
        let codec = Codec::new(0.5, 1.0);
        let good = codec.encode_framed(9, &traj);
        // Flip one bit in every byte position: the CRC (or magic/version
        // checks) must catch all of them.
        for i in 0..good.len() {
            let mut bad = BytesMut::from(&good[..]);
            bad[i] ^= 0x01;
            assert!(
                codec.decode(bad.freeze()).is_err(),
                "byte {i} corruption undetected"
            );
        }
    }

    #[test]
    fn framed_rejects_truncation_and_trailing_bytes() {
        let traj = smooth(15);
        let codec = Codec::new(0.5, 1.0);
        let good = codec.encode_framed(0, &traj);
        for cut in [0usize, 5, 6, 30, 46, good.len() - 1] {
            assert!(codec.decode(good.slice(0..cut)).is_err(), "cut at {cut}");
        }
        let mut trailing = BytesMut::from(&good[..]);
        trailing.put_u8(0);
        assert!(codec.decode(trailing.freeze()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A valid trajectory of up to `max_len` points with monotone
    /// timestamps and bounded coordinates.
    fn traj_strategy(max_len: usize) -> impl Strategy<Value = Trajectory> {
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.01..30.0f64), 0..=max_len).prop_map(
            |triples| {
                let mut t = 0.0;
                let pts = triples
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).expect("constructed valid")
            },
        )
    }

    // Power-of-two resolutions make quantization exactly idempotent, so
    // roundtrip stability can be asserted with exact equality.
    fn codec() -> Codec {
        Codec::new(0.5, 1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn framed_roundtrip_is_stable(traj in traj_strategy(60), seq in proptest::num::u32::ANY) {
            let codec = codec();
            let (once, meta) = codec.decode_framed(codec.encode_framed(seq, &traj)).unwrap();
            prop_assert_eq!(meta.expect("framed").seq, seq);
            let (twice, _) = codec.decode_framed(codec.encode_framed(seq, &once)).unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn v1_roundtrip_is_stable(traj in traj_strategy(60)) {
            let codec = codec();
            let once = codec.decode(codec.encode(&traj)).unwrap();
            let twice = codec.decode(codec.encode(&once)).unwrap();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn framed_truncation_always_errors(
            traj in traj_strategy(40),
            seq in proptest::num::u32::ANY,
            frac in 0.0..1.0f64,
        ) {
            let codec = codec();
            let full = codec.encode_framed(seq, &traj);
            let cut = (full.len() as f64 * frac) as usize; // strict prefix
            prop_assert!(codec.decode(full.slice(0..cut)).is_err());
        }

        #[test]
        fn framed_single_byte_mutation_always_errors(
            traj in traj_strategy(40),
            seq in proptest::num::u32::ANY,
            pos in 0.0..1.0f64,
            val in proptest::num::u8::ANY,
        ) {
            let codec = codec();
            let full = codec.encode_framed(seq, &traj);
            let idx = ((full.len() as f64 * pos) as usize).min(full.len() - 1);
            let mut bytes = full.to_vec();
            prop_assume!(bytes[idx] != val);
            bytes[idx] = val;
            prop_assert!(codec.decode(Bytes::from(bytes)).is_err());
        }

        #[test]
        fn v1_truncation_always_errors(traj in traj_strategy(40), frac in 0.0..1.0f64) {
            let codec = codec();
            let full = codec.encode(&traj);
            let cut = (full.len() as f64 * frac) as usize;
            prop_assert!(codec.decode(full.slice(0..cut)).is_err());
        }

        #[test]
        fn v1_single_byte_mutation_never_panics(
            traj in traj_strategy(40),
            pos in 0.0..1.0f64,
            val in proptest::num::u8::ANY,
        ) {
            // v1 has no checksum, so a mutated payload may still decode —
            // but it must always return Ok or Err, never panic.
            let codec = codec();
            let full = codec.encode(&traj);
            let idx = ((full.len() as f64 * pos) as usize).min(full.len() - 1);
            let mut bytes = full.to_vec();
            bytes[idx] = val;
            let _ = codec.decode(Bytes::from(bytes));
        }
    }
}
