//! Trajectory (de)serialization: a simple CSV dialect compatible with the
//! public Geolife/T-Drive/Trucks dumps, and a compact binary wire format for
//! shipping buffers from sensors (the paper's online-mode motivation).

use crate::point::Point;
use crate::traj::{Trajectory, TrajectoryError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from reading or writing trajectory files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A CSV line could not be parsed; holds the 1-based line number.
    Parse(usize, String),
    /// The parsed points do not form a valid trajectory.
    Invalid(TrajectoryError),
    /// The binary payload is truncated or malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            IoError::Invalid(e) => write!(f, "invalid trajectory: {e}"),
            IoError::Malformed(msg) => write!(f, "malformed binary payload: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<TrajectoryError> for IoError {
    fn from(e: TrajectoryError) -> Self {
        IoError::Invalid(e)
    }
}

/// Reads one trajectory from `x,y,t` CSV lines. Empty lines and lines
/// starting with `#` are skipped; an optional `x,y,t` header is tolerated.
pub fn read_csv<R: Read>(reader: R) -> Result<Trajectory, IoError> {
    let reader = BufReader::new(reader);
    let mut pts = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if pts.is_empty() && trimmed.to_ascii_lowercase().replace(' ', "") == "x,y,t" {
            continue;
        }
        let mut it = trimmed.split(',');
        let mut field = |name: &str| -> Result<f64, IoError> {
            it.next()
                .ok_or_else(|| IoError::Parse(lineno + 1, format!("missing field {name}")))?
                .trim()
                .parse::<f64>()
                .map_err(|e| IoError::Parse(lineno + 1, format!("bad {name}: {e}")))
        };
        let x = field("x")?;
        let y = field("y")?;
        let t = field("t")?;
        pts.push(Point::new(x, y, t));
    }
    Ok(Trajectory::new(pts)?)
}

/// Writes one trajectory as `x,y,t` CSV with a header line.
pub fn write_csv<W: Write>(writer: &mut W, traj: &Trajectory) -> Result<(), IoError> {
    writeln!(writer, "x,y,t")?;
    for p in traj {
        writeln!(writer, "{},{},{}", p.x, p.y, p.t)?;
    }
    Ok(())
}

/// Magic tag identifying the binary trajectory format.
const MAGIC: u32 = 0x524C_5453; // "RLTS"
/// Format version, bumped on incompatible layout changes.
const VERSION: u16 = 1;

/// Encodes a trajectory in the compact binary wire format:
/// magic(u32) | version(u16) | count(u64) | count × (x f64, y f64, t f64),
/// all big-endian.
pub fn encode_binary(traj: &Trajectory) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + traj.len() * 24);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(traj.len() as u64);
    for p in traj {
        buf.put_f64(p.x);
        buf.put_f64(p.y);
        buf.put_f64(p.t);
    }
    buf.freeze()
}

/// Decodes a trajectory from the binary wire format produced by
/// [`encode_binary`].
pub fn decode_binary(mut buf: Bytes) -> Result<Trajectory, IoError> {
    if buf.remaining() < 14 {
        return Err(IoError::Malformed("header truncated"));
    }
    if buf.get_u32() != MAGIC {
        return Err(IoError::Malformed("bad magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(IoError::Malformed("unsupported version"));
    }
    let count = buf.get_u64() as usize;
    if buf.remaining() != count * 24 {
        return Err(IoError::Malformed("body length mismatch"));
    }
    let mut pts = Vec::with_capacity(count);
    for _ in 0..count {
        let x = buf.get_f64();
        let y = buf.get_f64();
        let t = buf.get_f64();
        pts.push(Point::new(x, y, t));
    }
    Ok(Trajectory::new(pts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.5, -2.0, 3.0), (4.0, 4.0, 9.5)]).unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &t).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# a comment\nx,y,t\n\n1,2,3\n  4 , 5 , 6 \n";
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].y, 5.0);
    }

    #[test]
    fn csv_reports_bad_line_number() {
        let text = "1,2,3\n4,oops,6\n";
        match read_csv(text.as_bytes()) {
            Err(IoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn csv_missing_field() {
        match read_csv("1,2\n".as_bytes()) {
            Err(IoError::Parse(1, msg)) => assert!(msg.contains("t")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn csv_rejects_time_travel() {
        let text = "0,0,5\n1,1,4\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(IoError::Invalid(_))
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let bytes = encode_binary(&t);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = Trajectory::new(vec![]).unwrap();
        assert_eq!(decode_binary(encode_binary(&t)).unwrap(), t);
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = sample();
        let bytes = encode_binary(&t);
        // Truncated body.
        let cut = bytes.slice(0..bytes.len() - 8);
        assert!(matches!(decode_binary(cut), Err(IoError::Malformed(_))));
        // Bad magic.
        let mut corrupt = BytesMut::from(&bytes[..]);
        corrupt[0] ^= 0xFF;
        assert!(matches!(
            decode_binary(corrupt.freeze()),
            Err(IoError::Malformed(_))
        ));
    }
}

/// Magic tag identifying the binary *dataset* format (many trajectories).
const DATASET_MAGIC: u32 = 0x524C_5444; // "RLTD"

/// Encodes a whole dataset in a compact binary format:
/// magic(u32) | version(u16) | count(u64) | count × [len(u64) | points...],
/// where each point is `(x f64, y f64, t f64)`, all big-endian.
pub fn encode_dataset(dataset: &[Trajectory]) -> Bytes {
    let total: usize = dataset.iter().map(|t| t.len()).sum();
    let mut buf = BytesMut::with_capacity(14 + dataset.len() * 8 + total * 24);
    buf.put_u32(DATASET_MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(dataset.len() as u64);
    for t in dataset {
        buf.put_u64(t.len() as u64);
        for p in t {
            buf.put_f64(p.x);
            buf.put_f64(p.y);
            buf.put_f64(p.t);
        }
    }
    buf.freeze()
}

/// Decodes a dataset encoded with [`encode_dataset`].
pub fn decode_dataset(mut buf: Bytes) -> Result<Vec<Trajectory>, IoError> {
    if buf.remaining() < 14 {
        return Err(IoError::Malformed("dataset header truncated"));
    }
    if buf.get_u32() != DATASET_MAGIC {
        return Err(IoError::Malformed("bad dataset magic"));
    }
    if buf.get_u16() != VERSION {
        return Err(IoError::Malformed("unsupported dataset version"));
    }
    let count = buf.get_u64() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(IoError::Malformed("trajectory length truncated"));
        }
        let len = buf.get_u64() as usize;
        if buf.remaining() < len * 24 {
            return Err(IoError::Malformed("trajectory body truncated"));
        }
        let mut pts = Vec::with_capacity(len);
        for _ in 0..len {
            let x = buf.get_f64();
            let y = buf.get_f64();
            let t = buf.get_f64();
            pts.push(Point::new(x, y, t));
        }
        out.push(Trajectory::new(pts)?);
    }
    if buf.has_remaining() {
        return Err(IoError::Malformed("trailing bytes after dataset"));
    }
    Ok(out)
}

#[cfg(test)]
mod dataset_tests {
    use super::*;

    fn dataset() -> Vec<Trajectory> {
        vec![
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap(),
            Trajectory::new(vec![]).unwrap(),
            Trajectory::from_xyt(&[(5.0, -3.0, 2.0), (6.0, 0.5, 4.0), (7.0, 1.0, 9.0)]).unwrap(),
        ]
    }

    #[test]
    fn dataset_roundtrip() {
        let d = dataset();
        let back = decode_dataset(encode_dataset(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn empty_dataset_roundtrip() {
        assert_eq!(
            decode_dataset(encode_dataset(&[])).unwrap(),
            Vec::<Trajectory>::new()
        );
    }

    #[test]
    fn dataset_rejects_trailing_garbage() {
        let mut raw = BytesMut::from(&encode_dataset(&dataset())[..]);
        raw.put_u8(0);
        assert!(matches!(
            decode_dataset(raw.freeze()),
            Err(IoError::Malformed(_))
        ));
    }

    #[test]
    fn dataset_rejects_truncation() {
        let full = encode_dataset(&dataset());
        for cut in [4usize, 13, 20, full.len() - 1] {
            let sliced = full.slice(0..cut);
            assert!(decode_dataset(sliced).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn dataset_magic_differs_from_single_trajectory_magic() {
        let d = encode_dataset(&dataset());
        let t = encode_binary(&dataset()[0]);
        assert!(decode_binary(d).is_err());
        assert!(decode_dataset(t).is_err());
    }
}
