//! Incremental maintenance of a simplified trajectory's error.
//!
//! Training the RLTS policy needs the reward `ε(T'_t) − ε(T''_{t+1})` at every
//! step, where the simplified trajectory changes by one dropped point and/or
//! one appended point. Recomputing the trajectory error from scratch is
//! `O(n)` per step; [`ErrorBook`] maintains it incrementally, as the paper's
//! remarks in §IV-A4 prescribe. The same structure drives the Bottom-Up
//! baseline and the `++` variants (variable-size buffer over all points).
//!
//! Internally the kept points form a doubly-linked list over the original
//! indices; each kept point (except the last) owns the anchor segment to its
//! successor, with cached `(max, sum, count)` error statistics, and the
//! segment maxima live in an order-statistics multiset for O(log n) max
//! queries.

use crate::error::{Aggregation, Measure, RangeStats, TrajView};
use crate::memo::{RangeBinding, SharedRangeMemo};
use crate::point::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// Multiset of non-negative finite `f64` keyed by IEEE-754 bits
/// (bit order equals numeric order for non-negative floats).
#[derive(Debug, Default, Clone)]
struct F64Multiset {
    map: BTreeMap<u64, usize>,
    len: usize,
}

impl F64Multiset {
    fn insert(&mut self, v: f64) {
        debug_assert!(
            v >= 0.0 && v.is_finite(),
            "multiset key must be non-negative finite"
        );
        *self.map.entry(v.to_bits()).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `v`. A missing key indicates a float
    /// round-trip bug upstream; debug builds assert, release builds treat it
    /// as a no-op so a long fleet run degrades accuracy instead of aborting.
    fn remove(&mut self, v: f64) {
        let bits = v.to_bits();
        match self.map.get_mut(&bits) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.map.remove(&bits);
            }
            None => {
                debug_assert!(false, "removing value {v} not present in multiset");
                return;
            }
        }
        self.len -= 1;
    }

    fn max(&self) -> f64 {
        self.map
            .keys()
            .next_back()
            .map_or(0.0, |&b| f64::from_bits(b))
    }
}

/// Incrementally maintained error of a simplified trajectory over a fixed
/// original point sequence.
///
/// The book owns (a shared handle to) the original points, so it can live
/// inside training environments without borrowing from them.
#[derive(Debug, Clone)]
pub struct ErrorBook {
    measure: Measure,
    pts: Arc<[Point]>,
    /// next[i] = next kept original index after i (NONE if i is last or not kept)
    next: Vec<u32>,
    /// prev[i] = previous kept original index before i
    prev: Vec<u32>,
    /// per kept index i (except last): cached (max, sum, count) of segment (i, next[i])
    seg_max: Vec<f64>,
    seg_sum: Vec<f64>,
    seg_cnt: Vec<u32>,
    maxima: F64Multiset,
    total_sum: f64,
    total_cnt: usize,
    first: u32,
    last: u32,
    kept_count: usize,
    /// Optional binding into a shared [`RangeMemo`](crate::memo::RangeMemo);
    /// when set, `merge_cost` and `set_segment` consult the memo before
    /// scanning. Cached values are pure functions of their keys, so results
    /// are bit-identical with or without the binding.
    memo: Option<RangeBinding>,
}

impl ErrorBook {
    /// Creates a book whose simplified trajectory initially keeps the points
    /// `0..=upto` of `pts` (all adjacent, hence zero error).
    ///
    /// # Panics
    /// Panics if `pts` is empty or `upto >= pts.len()`.
    pub fn with_prefix(pts: impl Into<Arc<[Point]>>, measure: Measure, upto: usize) -> Self {
        let pts: Arc<[Point]> = pts.into();
        assert!(!pts.is_empty(), "empty point sequence");
        assert!(upto < pts.len(), "prefix end {upto} out of bounds");
        let n = pts.len();
        let mut book = ErrorBook {
            measure,
            pts,
            next: vec![NONE; n],
            prev: vec![NONE; n],
            seg_max: vec![0.0; n],
            seg_sum: vec![0.0; n],
            seg_cnt: vec![0; n],
            maxima: F64Multiset::default(),
            total_sum: 0.0,
            total_cnt: 0,
            first: 0,
            last: upto as u32,
            kept_count: upto + 1,
            memo: None,
        };
        for i in 0..upto {
            book.next[i] = (i + 1) as u32;
            book.prev[i + 1] = i as u32;
            book.set_segment(i, i + 1);
        }
        book
    }

    /// Creates a book keeping **all** points of `pts` (the starting state of
    /// the batch `++` variants and Bottom-Up).
    pub fn with_all(pts: impl Into<Arc<[Point]>>, measure: Measure) -> Self {
        let pts: Arc<[Point]> = pts.into();
        let upto = pts.len() - 1;
        Self::with_prefix(pts, measure, upto)
    }

    /// The error measure this book maintains.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// Binds this book (under a fresh trajectory id) into a shared
    /// [`RangeMemo`](crate::memo::RangeMemo) so range scans memoize across
    /// `merge_cost` previews and `drop`/`append` commits.
    pub fn enable_memo(&mut self, shared: &SharedRangeMemo) {
        self.memo = Some(RangeBinding::new(shared, self.measure));
    }

    /// Like [`ErrorBook::enable_memo`] but under an explicit trajectory id
    /// (see [`RangeMemo::alloc_traj_id`](crate::memo::RangeMemo::alloc_traj_id)),
    /// so books over the same immutable point data share cached ranges.
    pub fn enable_memo_keyed(&mut self, shared: &SharedRangeMemo, traj: u64) {
        self.memo = Some(RangeBinding::with_traj(shared, self.measure, traj));
    }

    /// Invalidates this book's cached ranges (generation bump). Required
    /// only if a trajectory id from [`ErrorBook::enable_memo_keyed`] is
    /// being re-bound to different point data.
    pub fn bump_memo_generation(&mut self) {
        if let Some(b) = &mut self.memo {
            b.bump_generation();
        }
    }

    /// The original points.
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// A shared handle to the original points.
    pub fn points_arc(&self) -> Arc<[Point]> {
        Arc::clone(&self.pts)
    }

    /// Number of currently kept points.
    pub fn kept_len(&self) -> usize {
        self.kept_count
    }

    /// Original index of the last kept point.
    pub fn last_index(&self) -> usize {
        self.last as usize
    }

    /// Whether original index `i` is currently kept.
    pub fn is_kept(&self, i: usize) -> bool {
        i == self.first as usize || self.prev[i] != NONE
    }

    /// Next kept index after `i`, if any. `i` must be kept.
    pub fn next_kept(&self, i: usize) -> Option<usize> {
        match self.next[i] {
            NONE => None,
            j => Some(j as usize),
        }
    }

    /// Previous kept index before `i`, if any. `i` must be kept.
    pub fn prev_kept(&self, i: usize) -> Option<usize> {
        match self.prev[i] {
            NONE => None,
            j => Some(j as usize),
        }
    }

    /// The currently kept indices, ascending.
    pub fn kept_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.kept_count);
        let mut i = self.first;
        loop {
            out.push(i as usize);
            match self.next[i as usize] {
                NONE => break,
                j => i = j,
            }
        }
        out
    }

    /// Current error of the simplified trajectory under the given
    /// aggregation, w.r.t. the prefix of `pts` covered so far.
    pub fn error(&self, agg: Aggregation) -> f64 {
        match agg {
            Aggregation::Max => self.maxima.max(),
            Aggregation::Mean => {
                if self.total_cnt == 0 {
                    0.0
                } else {
                    self.total_sum / self.total_cnt as f64
                }
            }
        }
    }

    /// Appends original point `i` (`i > last_index()`) to the kept set,
    /// creating the anchor segment `(last, i)` that covers any skipped
    /// points in between. Returns the new segment's max error.
    pub fn append(&mut self, i: usize) -> f64 {
        assert!(i < self.pts.len(), "append index {i} out of bounds");
        let l = self.last as usize;
        assert!(i > l, "append index {i} must exceed last kept {l}");
        self.next[l] = i as u32;
        self.prev[i] = l as u32;
        self.last = i as u32;
        self.kept_count += 1;
        self.set_segment(l, i)
    }

    /// Drops the *interior* kept point with original index `j`, merging its
    /// two incident segments. Returns the merged segment's max error.
    ///
    /// # Panics
    /// Panics if `j` is not kept or is the first/last kept point.
    pub fn drop(&mut self, j: usize) -> f64 {
        let p = self.prev[j];
        let n = self.next[j];
        assert!(
            p != NONE && n != NONE,
            "cannot drop boundary or non-kept index {j}"
        );
        let (p, n) = (p as usize, n as usize);
        self.clear_segment(p);
        self.clear_segment(j);
        self.next[j] = NONE;
        self.prev[j] = NONE;
        self.next[p] = n as u32;
        self.prev[n] = p as u32;
        self.kept_count -= 1;
        self.set_segment(p, n)
    }

    /// Cost of dropping kept interior point `j` *without* applying it: the
    /// max error of the would-be merged segment `(prev(j), next(j))` over all
    /// original points anchored to it (paper Eq. (12), the batch value).
    pub fn merge_cost(&self, j: usize) -> f64 {
        let p = self.prev[j];
        let n = self.next[j];
        assert!(
            p != NONE && n != NONE,
            "no merge cost for boundary or non-kept index {j}"
        );
        let (p, n) = (p as usize, n as usize);
        match &self.memo {
            // Compute full stats on a miss so the commit-time `set_segment`
            // over the same range is a guaranteed hit.
            Some(b) => {
                b.stats_for(p, n, || {
                    TrajView::anchor(&self.pts, p, n).error_stats_for(self.measure)
                })
                .max
            }
            None => TrajView::anchor(&self.pts, p, n).max_error_for(self.measure),
        }
    }

    /// Max error of the currently kept segment starting at kept index `s`.
    pub fn segment_max(&self, s: usize) -> f64 {
        debug_assert!(self.next[s] != NONE, "index {s} owns no segment");
        self.seg_max[s]
    }

    fn set_segment(&mut self, s: usize, e: usize) -> f64 {
        let stats = if e == s + 1 && !self.measure.segment_based() {
            RangeStats::default() // adjacent points introduce no positional error
        } else {
            match &self.memo {
                Some(b) => b.stats_for(s, e, || {
                    TrajView::anchor(&self.pts, s, e).error_stats_for(self.measure)
                }),
                None => TrajView::anchor(&self.pts, s, e).error_stats_for(self.measure),
            }
        };
        self.seg_max[s] = stats.max;
        self.seg_sum[s] = stats.sum;
        self.seg_cnt[s] = stats.count as u32;
        self.maxima.insert(stats.max);
        self.total_sum += stats.sum;
        self.total_cnt += stats.count;
        stats.max
    }

    fn clear_segment(&mut self, s: usize) {
        self.maxima.remove(self.seg_max[s]);
        self.total_sum -= self.seg_sum[s];
        self.total_cnt -= self.seg_cnt[s] as usize;
        self.seg_max[s] = 0.0;
        self.seg_sum[s] = 0.0;
        self.seg_cnt[s] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::simplification_error;

    fn zigzag(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let y = if i % 2 == 0 {
                    0.0
                } else {
                    1.0 + (i as f64) * 0.1
                };
                Point::new(i as f64, y, i as f64)
            })
            .collect()
    }

    #[test]
    fn initial_prefix_has_zero_error() {
        let pts = zigzag(8);
        let book = ErrorBook::with_prefix(pts.as_slice(), Measure::Sed, 4);
        assert_eq!(book.error(Aggregation::Max), 0.0);
        assert_eq!(book.kept_len(), 5);
        assert_eq!(book.kept_indices(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_then_matches_batch_recompute() {
        let pts = zigzag(10);
        for m in Measure::ALL {
            let mut book = ErrorBook::with_all(pts.as_slice(), m);
            book.drop(3);
            book.drop(6);
            book.drop(4);
            let kept = book.kept_indices();
            let expect = simplification_error(m, &pts, &kept, Aggregation::Max);
            assert!((book.error(Aggregation::Max) - expect).abs() < 1e-12, "{m}");
            let expect_mean = simplification_error(m, &pts, &kept, Aggregation::Mean);
            assert!(
                (book.error(Aggregation::Mean) - expect_mean).abs() < 1e-12,
                "{m} mean"
            );
        }
    }

    #[test]
    fn append_with_skip_matches_recompute() {
        let pts = zigzag(12);
        for m in Measure::ALL {
            let mut book = ErrorBook::with_prefix(pts.as_slice(), m, 3);
            book.append(4);
            book.append(7); // skips 5 and 6
            book.drop(2);
            book.append(11); // skips 8..=10
            let kept = book.kept_indices();
            let expect = simplification_error(m, &pts[..12], &kept, Aggregation::Max);
            assert!((book.error(Aggregation::Max) - expect).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn merge_cost_previews_drop() {
        let pts = zigzag(9);
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Sed);
        book.drop(4);
        let cost = book.merge_cost(5);
        let seg_err = book.drop(5);
        assert!((cost - seg_err).abs() < 1e-12);
        let kept = book.kept_indices();
        let expect = simplification_error(Measure::Sed, &pts, &kept, Aggregation::Max);
        assert!((book.error(Aggregation::Max) - expect).abs() < 1e-12);
    }

    #[test]
    fn linked_list_navigation() {
        let pts = zigzag(6);
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Ped);
        book.drop(2);
        assert_eq!(book.next_kept(1), Some(3));
        assert_eq!(book.prev_kept(3), Some(1));
        assert!(!book.is_kept(2));
        assert!(book.is_kept(0));
        assert_eq!(book.prev_kept(0), None);
        assert_eq!(book.next_kept(5), None);
    }

    #[test]
    #[should_panic]
    fn dropping_first_point_panics() {
        let pts = zigzag(5);
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Sed);
        book.drop(0);
    }

    #[test]
    #[should_panic]
    fn dropping_dropped_point_panics() {
        let pts = zigzag(6);
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Sed);
        book.drop(2);
        book.drop(2);
    }

    #[test]
    #[should_panic]
    fn append_backwards_panics() {
        let pts = zigzag(6);
        let mut book = ErrorBook::with_prefix(pts.as_slice(), Measure::Sed, 4);
        book.append(3);
    }

    #[test]
    fn error_consistent_after_every_drop() {
        let pts = zigzag(14);
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Sed);
        for j in [7, 3, 11, 5, 9] {
            book.drop(j);
            let kept = book.kept_indices();
            let expect = simplification_error(Measure::Sed, &pts, &kept, Aggregation::Max);
            assert!(
                (book.error(Aggregation::Max) - expect).abs() < 1e-12,
                "after drop {j}"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not present in multiset")]
    fn multiset_missing_key_asserts_in_debug() {
        let mut set = F64Multiset::default();
        set.insert(1.0);
        set.remove(2.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn multiset_missing_key_is_noop_in_release() {
        // Regression: a float round-trip bug used to abort the whole run via
        // panic; release builds now degrade gracefully and keep the
        // remaining entries (and `len`) intact.
        let mut set = F64Multiset::default();
        set.insert(1.0);
        set.insert(1.0);
        set.insert(3.5);
        set.remove(2.0); // missing key: no-op
        assert_eq!(set.len, 3);
        assert_eq!(set.max(), 3.5);
        set.remove(3.5);
        assert_eq!(set.len, 2);
        assert_eq!(set.max(), 1.0);
    }

    #[test]
    fn multiset_remove_tracks_len() {
        let mut set = F64Multiset::default();
        for v in [0.5, 0.5, 2.0] {
            set.insert(v);
        }
        set.remove(0.5);
        assert_eq!(set.len, 2);
        assert_eq!(set.max(), 2.0);
        set.remove(2.0);
        assert_eq!(set.max(), 0.5);
        assert_eq!(set.len, 1);
    }

    #[test]
    fn multiset_handles_duplicate_maxima() {
        // Symmetric zigzag gives equal segment errors; removing one of two
        // identical keys must not remove both.
        let pts: Vec<Point> = (0..7)
            .map(|i| Point::new(i as f64, if i % 2 == 0 { 0.0 } else { 1.0 }, i as f64))
            .collect();
        let mut book = ErrorBook::with_all(pts.as_slice(), Measure::Ped);
        book.drop(1);
        book.drop(3);
        let e1 = book.error(Aggregation::Max);
        assert!(e1 > 0.0);
        book.drop(5);
        let kept = book.kept_indices();
        let expect = simplification_error(Measure::Ped, &pts, &kept, Aggregation::Max);
        assert!((book.error(Aggregation::Max) - expect).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::error::simplification_error;
    use proptest::prelude::*;

    prop_compose! {
        fn walk(max_len: usize)
            (n in 8..max_len)
            (steps in prop::collection::vec((-3.0..3.0f64, -3.0..3.0f64, 0.05..1.5f64), n))
            -> Vec<Point>
        {
            let (mut x, mut y, mut t) = (0.0, 0.0, 0.0);
            steps
                .into_iter()
                .map(|(dx, dy, dt)| {
                    x += dx;
                    y += dy;
                    t += dt;
                    Point::new(x, y, t)
                })
                .collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random drop sequences: after every drop the incrementally
        /// maintained error equals a from-scratch recompute through the new
        /// view/kernel path — bit-identical for Max (the multiset stores the
        /// very same per-segment kernel outputs), 1e-12-close for Mean
        /// (incremental add/subtract of segment sums reorders float adds).
        #[test]
        fn error_book_matches_from_scratch_over_random_drops(
            pts in walk(40),
            picks in prop::collection::vec(0.0..1.0f64, 12),
        ) {
            for m in Measure::ALL {
                let mut book = ErrorBook::with_all(pts.as_slice(), m);
                for pick in &picks {
                    if book.kept_len() <= 2 {
                        break;
                    }
                    let kept = book.kept_indices();
                    let interior = &kept[1..kept.len() - 1];
                    if interior.is_empty() {
                        break;
                    }
                    let j = interior[((pick * interior.len() as f64) as usize)
                        .min(interior.len() - 1)];
                    book.drop(j);

                    let kept_now = book.kept_indices();
                    let scratch_max =
                        simplification_error(m, &pts, &kept_now, Aggregation::Max);
                    prop_assert_eq!(
                        book.error(Aggregation::Max).to_bits(),
                        scratch_max.to_bits(),
                        "{} max after dropping {}", m, j
                    );
                    let scratch_mean =
                        simplification_error(m, &pts, &kept_now, Aggregation::Mean);
                    let tol = 1e-12 * scratch_mean.abs().max(1.0);
                    prop_assert!(
                        (book.error(Aggregation::Mean) - scratch_mean).abs() <= tol,
                        "{} mean after dropping {}", m, j
                    );
                }
            }
        }

        /// Mixed append/drop flows stay consistent with the batch recompute
        /// under the view API.
        #[test]
        fn error_book_append_flow_matches_from_scratch(
            pts in walk(30),
            appends in prop::collection::vec(1..4usize, 8),
        ) {
            for m in Measure::ALL {
                let mut book = ErrorBook::with_prefix(pts.as_slice(), m, 1);
                for step in &appends {
                    let target = (book.last_index() + step).min(pts.len() - 1);
                    if target > book.last_index() {
                        book.append(target);
                    }
                }
                let kept = book.kept_indices();
                // The covered prefix ends at the book's last kept index.
                let prefix = &pts[..=book.last_index()];
                let scratch = simplification_error(m, prefix, &kept, Aggregation::Max);
                prop_assert_eq!(
                    book.error(Aggregation::Max).to_bits(),
                    scratch.to_bits(),
                    "{}", m
                );
            }
        }
    }
}
