//! Anchor segments and the point-vs-segment geometry used by all error
//! measures.

use crate::point::Point;

/// A directed segment between two spatio-temporal points, used as the
/// *anchor segment* approximating a run of original points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point of the segment.
    pub start: Point,
    /// End point of the segment.
    pub end: Point,
}

impl Segment {
    /// Creates a segment from its two endpoints.
    #[inline]
    pub const fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Spatial length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.dist(&self.end)
    }

    /// Time span of the segment.
    #[inline]
    pub fn time_span(&self) -> f64 {
        self.end.t - self.start.t
    }

    /// Average speed along the segment, or `None` for a zero-duration segment.
    #[inline]
    pub fn speed(&self) -> Option<f64> {
        self.start.speed_to(&self.end)
    }

    /// Direction of the segment in radians, or `None` if degenerate in space.
    #[inline]
    pub fn direction(&self) -> Option<f64> {
        self.start.direction_to(&self.end)
    }

    /// Time-synchronized position on the segment at time `t`
    /// (linear interpolation between the endpoint timestamps).
    #[inline]
    pub fn position_at(&self, t: f64) -> (f64, f64) {
        self.start.interpolate_at(&self.end, t)
    }

    /// Distance from location `(px, py)` to this segment (clamped to the
    /// segment, i.e. the distance to the nearest point *on* the segment).
    pub fn dist_to_segment(&self, px: f64, py: f64) -> f64 {
        let (ax, ay) = (self.start.x, self.start.y);
        let (bx, by) = (self.end.x, self.end.y);
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return (px - ax).hypot(py - ay);
        }
        let r = (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0);
        let (cx, cy) = (ax + r * dx, ay + r * dy);
        (px - cx).hypot(py - cy)
    }

    /// Perpendicular distance from location `(px, py)` to the supporting
    /// *line* of the segment (unclamped). Falls back to point distance for a
    /// spatially degenerate segment.
    pub fn dist_to_line(&self, px: f64, py: f64) -> f64 {
        let (ax, ay) = (self.start.x, self.start.y);
        let (bx, by) = (self.end.x, self.end.y);
        let (dx, dy) = (bx - ax, by - ay);
        let len = (dx * dx + dy * dy).sqrt();
        if len == 0.0 {
            return (px - ax).hypot(py - ay);
        }
        ((px - ax) * dy - (py - ay) * dx).abs() / len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, at: f64, bx: f64, by: f64, bt: f64) -> Segment {
        Segment::new(Point::new(ax, ay, at), Point::new(bx, by, bt))
    }

    #[test]
    fn length_speed_direction() {
        let s = seg(0.0, 0.0, 0.0, 3.0, 4.0, 5.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.speed(), Some(1.0));
        assert!((s.direction().unwrap() - (4.0f64).atan2(3.0)).abs() < 1e-12);
        assert_eq!(s.time_span(), 5.0);
    }

    #[test]
    fn degenerate_segment_speed_direction() {
        let s = seg(1.0, 1.0, 2.0, 1.0, 1.0, 2.0);
        assert_eq!(s.speed(), None);
        assert_eq!(s.direction(), None);
    }

    #[test]
    fn position_at_synchronizes_by_time() {
        let s = seg(0.0, 0.0, 10.0, 10.0, 0.0, 20.0);
        let (x, y) = s.position_at(12.5);
        assert!((x - 2.5).abs() < 1e-12);
        assert_eq!(y, 0.0);
    }

    #[test]
    fn dist_to_segment_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 0.0, 10.0, 0.0, 1.0);
        // Perpendicular foot inside the segment.
        assert!((s.dist_to_segment(5.0, 3.0) - 3.0).abs() < 1e-12);
        // Beyond the end: clamp to endpoint distance.
        assert!((s.dist_to_segment(13.0, 4.0) - 5.0).abs() < 1e-12);
        // Before the start.
        assert!((s.dist_to_segment(-3.0, 4.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dist_to_line_is_unclamped() {
        let s = seg(0.0, 0.0, 0.0, 10.0, 0.0, 1.0);
        // The same point beyond the end has a smaller *line* distance.
        assert!((s.dist_to_line(13.0, 4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dist_to_line_degenerate_falls_back_to_point() {
        let s = seg(1.0, 1.0, 0.0, 1.0, 1.0, 1.0);
        assert!((s.dist_to_line(4.0, 5.0) - 5.0).abs() < 1e-12);
        assert!((s.dist_to_segment(4.0, 5.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_on_segment_has_zero_distance() {
        let s = seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0);
        assert!(s.dist_to_segment(2.0, 2.0) < 1e-12);
        assert!(s.dist_to_line(2.0, 2.0) < 1e-12);
    }
}
