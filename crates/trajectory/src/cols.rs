//! Struct-of-arrays trajectory storage: [`TrajCols`] and [`ColsView`].
//!
//! The rest of the crate models a trajectory as `&[Point]` — an
//! array-of-structs where each element interleaves `x`, `y`, `t`. That
//! layout is ideal for per-point algorithms but pessimal for the batch
//! range kernels (DESIGN.md §16): a SED sweep touching only `x`/`t` still
//! drags `y` through the cache, and the interleaving defeats
//! autovectorization of the interpolation arithmetic.
//!
//! [`TrajCols`] stores the same trajectory as three parallel column
//! vectors (`xs`, `ys`, `ts`); [`ColsView`] is the borrowed counterpart,
//! cheap to copy and to slice out of an on-disk column segment
//! (`trajstore::colseg`). The SoA range kernels in
//! [`error::soa`](crate::error::soa) consume a [`ColsView`] and are
//! bit-identical to the `&[Point]` kernels — the layouts are freely
//! interchangeable, columns are simply faster for batch sweeps.
//!
//! # Example
//!
//! ```
//! use trajectory::cols::TrajCols;
//! use trajectory::error::{range_error_stats, range_error_stats_cols, Sed};
//! use trajectory::Point;
//!
//! let pts: Vec<Point> = (0..6)
//!     .map(|i| Point::new(i as f64, if i == 3 { 2.0 } else { 0.0 }, i as f64))
//!     .collect();
//! let cols = TrajCols::from_points(&pts);
//! let aos = range_error_stats::<Sed>(&pts, 0, 5);
//! let soa = range_error_stats_cols::<Sed>(cols.view(), 0, 5);
//! assert_eq!(aos.max.to_bits(), soa.max.to_bits());
//! ```

use crate::point::Point;

/// A trajectory stored as three parallel column vectors.
///
/// The columns always have equal length; index `i` across `xs`/`ys`/`ts`
/// is the point `pts[i]` of the equivalent array-of-structs trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrajCols {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ts: Vec<f64>,
}

impl TrajCols {
    /// Creates an empty column set.
    pub fn new() -> Self {
        TrajCols::default()
    }

    /// Creates an empty column set with room for `n` points per column.
    pub fn with_capacity(n: usize) -> Self {
        TrajCols {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            ts: Vec::with_capacity(n),
        }
    }

    /// Transposes an array-of-structs trajectory into columns.
    pub fn from_points(pts: &[Point]) -> Self {
        let mut cols = TrajCols::with_capacity(pts.len());
        for p in pts {
            cols.push(*p);
        }
        cols
    }

    /// Builds a column set from three owned columns.
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn from_columns(xs: Vec<f64>, ys: Vec<f64>, ts: Vec<f64>) -> Self {
        assert!(
            xs.len() == ys.len() && ys.len() == ts.len(),
            "column length mismatch: {} xs, {} ys, {} ts",
            xs.len(),
            ys.len(),
            ts.len()
        );
        TrajCols { xs, ys, ts }
    }

    /// Appends one point to all three columns.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.ts.push(p.t);
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The point at index `i`, re-assembled from the columns.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i], self.ts[i])
    }

    /// Borrows the columns as a [`ColsView`].
    #[inline]
    pub fn view(&self) -> ColsView<'_> {
        ColsView {
            xs: &self.xs,
            ys: &self.ys,
            ts: &self.ts,
        }
    }

    /// The `x` column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The `y` column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The `t` column.
    #[inline]
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }

    /// Transposes back into an array-of-structs trajectory.
    pub fn to_points(&self) -> Vec<Point> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }

    /// Clears all three columns, keeping their capacity.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.ts.clear();
    }
}

/// A borrowed struct-of-arrays trajectory: three parallel column slices.
///
/// `Copy`, so it passes by value like `&[Point]` does. Construct via
/// [`TrajCols::view`] or [`ColsView::new`] over columns sliced out of an
/// on-disk segment; the constructor enforces equal column lengths, so the
/// kernels can index all three columns by one bound.
#[derive(Debug, Clone, Copy)]
pub struct ColsView<'a> {
    /// The `x` column.
    pub xs: &'a [f64],
    /// The `y` column.
    pub ys: &'a [f64],
    /// The `t` column.
    pub ts: &'a [f64],
}

impl<'a> ColsView<'a> {
    /// Creates a view over three equal-length column slices.
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn new(xs: &'a [f64], ys: &'a [f64], ts: &'a [f64]) -> Self {
        assert!(
            xs.len() == ys.len() && ys.len() == ts.len(),
            "column length mismatch: {} xs, {} ys, {} ts",
            xs.len(),
            ys.len(),
            ts.len()
        );
        ColsView { xs, ys, ts }
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The point at index `i`, re-assembled from the columns.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i], self.ts[i])
    }

    /// Sub-view over point indices `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > self.len()`.
    pub fn slice(&self, lo: usize, hi: usize) -> ColsView<'a> {
        ColsView {
            xs: &self.xs[lo..hi],
            ys: &self.ys[lo..hi],
            ts: &self.ts[lo..hi],
        }
    }

    /// Transposes into an array-of-structs trajectory.
    pub fn to_points(&self) -> Vec<Point> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * 1.5, -(i as f64), i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn round_trips_points() {
        let p = pts(17);
        let cols = TrajCols::from_points(&p);
        assert_eq!(cols.len(), 17);
        assert!(!cols.is_empty());
        assert_eq!(cols.to_points(), p);
        assert_eq!(cols.view().to_points(), p);
        for (i, want) in p.iter().enumerate() {
            assert_eq!(cols.point(i), *want);
            assert_eq!(cols.view().point(i), *want);
        }
    }

    #[test]
    fn from_columns_round_trips_through_accessors() {
        let p = pts(9);
        let direct = TrajCols::from_points(&p);
        let rebuilt = TrajCols::from_columns(
            direct.xs().to_vec(),
            direct.ys().to_vec(),
            direct.ts().to_vec(),
        );
        assert_eq!(direct, rebuilt);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn from_columns_rejects_ragged_input() {
        TrajCols::from_columns(vec![1.0, 2.0], vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn view_constructor_rejects_ragged_input() {
        ColsView::new(&[1.0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn slice_matches_point_range() {
        let p = pts(12);
        let cols = TrajCols::from_points(&p);
        let sub = cols.view().slice(3, 9);
        assert_eq!(sub.len(), 6);
        assert_eq!(sub.to_points(), p[3..9].to_vec());
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut cols = TrajCols::from_points(&pts(5));
        cols.clear();
        assert!(cols.is_empty());
        assert!(cols.view().is_empty());
        assert_eq!(cols.len(), 0);
    }

    #[test]
    fn push_extends_all_columns() {
        let mut cols = TrajCols::with_capacity(4);
        cols.push(Point::new(1.0, 2.0, 3.0));
        cols.push(Point::new(4.0, 5.0, 6.0));
        assert_eq!(cols.xs(), &[1.0, 4.0]);
        assert_eq!(cols.ys(), &[2.0, 5.0]);
        assert_eq!(cols.ts(), &[3.0, 6.0]);
    }
}
