//! Trajectories: ordered sequences of spatio-temporal points.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// A trajectory `T = ⟨p_1, …, p_n⟩`: a sequence of points with
/// non-decreasing timestamps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<Point>,
}

/// Errors arising when validating or constructing trajectories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// Timestamps must be non-decreasing; holds the offending index.
    TimeNotMonotone(usize),
    /// A coordinate or timestamp was NaN or infinite; holds the offending index.
    NonFinite(usize),
    /// The operation requires at least this many points.
    TooShort {
        /// Number of points required by the operation.
        required: usize,
        /// Number of points actually present.
        actual: usize,
    },
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::TimeNotMonotone(i) => {
                write!(f, "timestamp at index {i} is smaller than its predecessor")
            }
            TrajectoryError::NonFinite(i) => {
                write!(f, "non-finite coordinate or timestamp at index {i}")
            }
            TrajectoryError::TooShort { required, actual } => {
                write!(
                    f,
                    "trajectory too short: need {required} points, have {actual}"
                )
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

impl Trajectory {
    /// Creates a trajectory after validating finiteness and time monotonicity.
    pub fn new(points: Vec<Point>) -> Result<Self, TrajectoryError> {
        for (i, p) in points.iter().enumerate() {
            if !(p.x.is_finite() && p.y.is_finite() && p.t.is_finite()) {
                return Err(TrajectoryError::NonFinite(i));
            }
            if i > 0 && p.t < points[i - 1].t {
                return Err(TrajectoryError::TimeNotMonotone(i));
            }
        }
        Ok(Trajectory { points })
    }

    /// Creates a trajectory without validation.
    ///
    /// Use only for inputs known to be well-formed (e.g. generator output);
    /// downstream error measures assume monotone finite timestamps.
    pub fn new_unchecked(points: Vec<Point>) -> Self {
        Trajectory { points }
    }

    /// Builds a trajectory from `(x, y, t)` triples (validated).
    pub fn from_xyt(triples: &[(f64, f64, f64)]) -> Result<Self, TrajectoryError> {
        Self::new(
            triples
                .iter()
                .map(|&(x, y, t)| Point::new(x, y, t))
                .collect(),
        )
    }

    /// Number of points `|T|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points as a slice.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The point at `idx` (0-based), if present.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Point> {
        self.points.get(idx)
    }

    /// The first point, if any.
    pub fn first(&self) -> Option<&Point> {
        self.points.first()
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<&Point> {
        self.points.last()
    }

    /// The subtrajectory `T[i:j]` (inclusive, 0-based), as an owned copy.
    ///
    /// # Panics
    /// Panics if `i > j` or `j >= len`.
    pub fn subtrajectory(&self, i: usize, j: usize) -> Trajectory {
        assert!(
            i <= j && j < self.points.len(),
            "invalid subtrajectory range [{i}, {j}]"
        );
        Trajectory {
            points: self.points[i..=j].to_vec(),
        }
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Total path length (sum of consecutive inter-point distances).
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Duration from first to last timestamp (0 for fewer than 2 points).
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Mean distance between consecutive points (0 for fewer than 2 points).
    pub fn mean_hop_distance(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.path_length() / (self.points.len() - 1) as f64
    }

    /// Mean time between consecutive points (0 for fewer than 2 points).
    pub fn mean_sampling_interval(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.duration() / (self.points.len() - 1) as f64
    }

    /// Extracts the simplified trajectory keeping exactly the given sorted,
    /// deduplicated 0-based indices.
    ///
    /// # Panics
    /// Panics if indices are not strictly increasing or out of bounds.
    pub fn select(&self, indices: &[usize]) -> Trajectory {
        let mut pts = Vec::with_capacity(indices.len());
        let mut prev: Option<usize> = None;
        for &i in indices {
            assert!(i < self.points.len(), "index {i} out of bounds");
            if let Some(p) = prev {
                assert!(i > p, "indices must be strictly increasing");
            }
            prev = Some(i);
            pts.push(self.points[i]);
        }
        Trajectory { points: pts }
    }
}

impl Index<usize> for Trajectory {
    type Output = Point;
    #[inline]
    fn index(&self, idx: usize) -> &Point {
        &self.points[idx]
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl From<Trajectory> for Vec<Point> {
    fn from(t: Trajectory) -> Vec<Point> {
        t.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| Point::new(i as f64, 0.0, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_non_monotone_time() {
        let r = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 2.0), (2.0, 0.0, 1.0)]);
        assert_eq!(r.unwrap_err(), TrajectoryError::TimeNotMonotone(2));
    }

    #[test]
    fn new_accepts_equal_timestamps() {
        // Equal timestamps are legal (bursty sensors); only decreases are not.
        assert!(Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0)]).is_ok());
    }

    #[test]
    fn new_rejects_nan() {
        let r = Trajectory::from_xyt(&[(0.0, f64::NAN, 0.0)]);
        assert_eq!(r.unwrap_err(), TrajectoryError::NonFinite(0));
    }

    #[test]
    fn new_rejects_infinite_timestamp() {
        let r = Trajectory::from_xyt(&[(0.0, 0.0, f64::INFINITY)]);
        assert_eq!(r.unwrap_err(), TrajectoryError::NonFinite(0));
    }

    #[test]
    fn empty_trajectory_ok() {
        let t = Trajectory::new(vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.path_length(), 0.0);
    }

    #[test]
    fn subtrajectory_bounds() {
        let t = line(5);
        let s = t.subtrajectory(1, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].x, 1.0);
        assert_eq!(s[2].x, 3.0);
    }

    #[test]
    #[should_panic]
    fn subtrajectory_invalid_range_panics() {
        line(5).subtrajectory(3, 1);
    }

    #[test]
    fn path_length_and_duration() {
        let t = line(4);
        assert_eq!(t.path_length(), 3.0);
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.mean_hop_distance(), 1.0);
        assert_eq!(t.mean_sampling_interval(), 1.0);
    }

    #[test]
    fn select_keeps_given_indices() {
        let t = line(6);
        let s = t.select(&[0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].x, 2.0);
        assert_eq!(s[2].x, 5.0);
    }

    #[test]
    #[should_panic]
    fn select_rejects_unsorted() {
        line(6).select(&[0, 3, 2]);
    }

    #[test]
    fn iteration_matches_points() {
        let t = line(3);
        let xs: Vec<f64> = t.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0]);
    }
}
