//! The simplification buffer shared by the online algorithms (STTrace,
//! SQUISH, SQUISH-E, RLTS): a doubly-linked list of buffered points, each
//! carrying an importance value, plus an ordered index over the values so
//! the minimum (or the `k` smallest, for RLTS states) can be read in
//! `O(k + log W)`.

use crate::point::Point;
use std::collections::BTreeSet;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry {
    point: Point,
    prev: u32,
    next: u32,
    value: f64,
    in_index: bool,
    alive: bool,
}

/// A buffer of stream points with importance values, ordered access to the
/// smallest values, and linked-list neighbourhood queries.
///
/// Slots are identified by the 0-based *stream position* of the point, which
/// only grows; dropped slots keep their position so callers can report kept
/// positions at the end.
#[derive(Debug, Clone, Default)]
pub struct OrderedBuffer {
    entries: Vec<Entry>,
    /// (value bits, slot) — order of non-negative f64 bits equals numeric order.
    index: BTreeSet<(u64, u32)>,
    head: u32,
    tail: u32,
    live: usize,
}

impl OrderedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        OrderedBuffer {
            entries: Vec::new(),
            index: BTreeSet::new(),
            head: NONE,
            tail: NONE,
            live: 0,
        }
    }

    /// Clears the buffer for a new stream.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.head = NONE;
        self.tail = NONE;
        self.live = 0;
    }

    /// Number of live (buffered) points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no points are buffered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of stream positions seen so far.
    pub fn stream_len(&self) -> usize {
        self.entries.len()
    }

    /// Appends the next stream point, returning its stream position.
    pub fn push_back(&mut self, p: Point) -> usize {
        let pos = self.entries.len() as u32;
        self.entries.push(Entry {
            point: p,
            prev: self.tail,
            next: NONE,
            value: 0.0,
            in_index: false,
            alive: true,
        });
        if self.tail != NONE {
            self.entries[self.tail as usize].next = pos;
        } else {
            self.head = pos;
        }
        self.tail = pos;
        self.live += 1;
        pos as usize
    }

    /// The point at a live stream position.
    pub fn point(&self, pos: usize) -> Point {
        debug_assert!(self.entries[pos].alive, "slot {pos} is not alive");
        self.entries[pos].point
    }

    /// The current importance value of a live position (0 if never set).
    pub fn value(&self, pos: usize) -> f64 {
        self.entries[pos].value
    }

    /// Whether a position is still buffered.
    pub fn is_alive(&self, pos: usize) -> bool {
        pos < self.entries.len() && self.entries[pos].alive
    }

    /// Whether a position currently participates in the value index.
    pub fn is_indexed(&self, pos: usize) -> bool {
        pos < self.entries.len() && self.entries[pos].in_index
    }

    /// Previous live position, if any.
    pub fn prev(&self, pos: usize) -> Option<usize> {
        match self.entries[pos].prev {
            NONE => None,
            p => Some(p as usize),
        }
    }

    /// Next live position, if any.
    pub fn next(&self, pos: usize) -> Option<usize> {
        match self.entries[pos].next {
            NONE => None,
            p => Some(p as usize),
        }
    }

    /// First live position, if any.
    pub fn front(&self) -> Option<usize> {
        (self.head != NONE).then_some(self.head as usize)
    }

    /// Last live position, if any.
    pub fn back(&self) -> Option<usize> {
        (self.tail != NONE).then_some(self.tail as usize)
    }

    /// Sets (or updates) the importance value of a live position and makes
    /// it a drop candidate in the ordered index.
    ///
    /// # Panics
    /// Panics if the value is negative or not finite.
    pub fn set_value(&mut self, pos: usize, value: f64) {
        assert!(
            value >= 0.0 && value.is_finite(),
            "importance value must be non-negative finite, got {value}"
        );
        let e = &mut self.entries[pos];
        debug_assert!(e.alive, "cannot set value of dropped slot {pos}");
        if e.in_index {
            let old = (e.value.to_bits(), pos as u32);
            self.index.remove(&old);
        }
        let e = &mut self.entries[pos];
        e.value = value;
        e.in_index = true;
        self.index.insert((value.to_bits(), pos as u32));
    }

    /// Removes a position from the value index without dropping it (e.g.
    /// boundary points that must never be dropped).
    pub fn unindex(&mut self, pos: usize) {
        let e = &mut self.entries[pos];
        if e.in_index {
            self.index.remove(&(e.value.to_bits(), pos as u32));
            self.entries[pos].in_index = false;
        }
    }

    /// Drops a live position from the buffer, returning its former
    /// `(prev, next)` neighbours.
    pub fn drop_point(&mut self, pos: usize) -> (Option<usize>, Option<usize>) {
        self.unindex(pos);
        let (prev, next) = {
            let e = &mut self.entries[pos];
            debug_assert!(e.alive, "double drop of slot {pos}");
            e.alive = false;
            (e.prev, e.next)
        };
        if prev != NONE {
            self.entries[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.entries[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.live -= 1;
        (
            (prev != NONE).then_some(prev as usize),
            (next != NONE).then_some(next as usize),
        )
    }

    /// The indexed position with the smallest value, if any.
    pub fn min(&self) -> Option<(usize, f64)> {
        self.index
            .iter()
            .next()
            .map(|&(bits, pos)| (pos as usize, f64::from_bits(bits)))
    }

    /// The `k` smallest indexed `(position, value)` pairs, ascending by
    /// value (fewer if fewer are indexed).
    pub fn k_smallest(&self, k: usize) -> Vec<(usize, f64)> {
        self.index
            .iter()
            .take(k)
            .map(|&(bits, pos)| (pos as usize, f64::from_bits(bits)))
            .collect()
    }

    /// Live positions from front to back.
    pub fn live_positions(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.live);
        let mut cur = self.head;
        while cur != NONE {
            out.push(cur as usize);
            cur = self.entries[cur as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> Point {
        Point::new(i as f64, 0.0, i as f64)
    }

    #[test]
    fn push_links_in_order() {
        let mut b = OrderedBuffer::new();
        for i in 0..4 {
            assert_eq!(b.push_back(p(i)), i);
        }
        assert_eq!(b.live_positions(), vec![0, 1, 2, 3]);
        assert_eq!(b.front(), Some(0));
        assert_eq!(b.back(), Some(3));
        assert_eq!(b.prev(2), Some(1));
        assert_eq!(b.next(2), Some(3));
    }

    #[test]
    fn drop_relinks_neighbours() {
        let mut b = OrderedBuffer::new();
        for i in 0..5 {
            b.push_back(p(i));
        }
        let (prev, next) = b.drop_point(2);
        assert_eq!((prev, next), (Some(1), Some(3)));
        assert_eq!(b.next(1), Some(3));
        assert_eq!(b.prev(3), Some(1));
        assert_eq!(b.len(), 4);
        assert!(!b.is_alive(2));
        assert_eq!(b.live_positions(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn drop_head_and_tail() {
        let mut b = OrderedBuffer::new();
        for i in 0..3 {
            b.push_back(p(i));
        }
        b.drop_point(0);
        assert_eq!(b.front(), Some(1));
        b.drop_point(2);
        assert_eq!(b.back(), Some(1));
        assert_eq!(b.live_positions(), vec![1]);
    }

    #[test]
    fn min_and_k_smallest_track_updates() {
        let mut b = OrderedBuffer::new();
        for i in 0..4 {
            b.push_back(p(i));
        }
        b.set_value(1, 5.0);
        b.set_value(2, 3.0);
        b.set_value(3, 4.0);
        assert_eq!(b.min(), Some((2, 3.0)));
        assert_eq!(b.k_smallest(2), vec![(2, 3.0), (3, 4.0)]);
        b.set_value(2, 10.0); // update moves it to the back
        assert_eq!(b.min(), Some((3, 4.0)));
        assert_eq!(b.k_smallest(5).len(), 3);
    }

    #[test]
    fn equal_values_tie_break_by_position() {
        let mut b = OrderedBuffer::new();
        for i in 0..3 {
            b.push_back(p(i));
        }
        b.set_value(2, 1.0);
        b.set_value(1, 1.0);
        assert_eq!(b.k_smallest(2), vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn unindex_excludes_from_candidates() {
        let mut b = OrderedBuffer::new();
        for i in 0..3 {
            b.push_back(p(i));
        }
        b.set_value(1, 1.0);
        b.set_value(2, 2.0);
        b.unindex(1);
        assert_eq!(b.min(), Some((2, 2.0)));
        assert!(!b.is_indexed(1));
        assert!(b.is_alive(1));
    }

    #[test]
    fn dropping_indexed_point_removes_candidate() {
        let mut b = OrderedBuffer::new();
        for i in 0..3 {
            b.push_back(p(i));
        }
        b.set_value(1, 1.0);
        b.drop_point(1);
        assert_eq!(b.min(), None);
    }

    #[test]
    #[should_panic]
    fn negative_value_rejected() {
        let mut b = OrderedBuffer::new();
        b.push_back(p(0));
        b.set_value(0, -1.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = OrderedBuffer::new();
        b.push_back(p(0));
        b.set_value(0, 1.0);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.stream_len(), 0);
        assert_eq!(b.min(), None);
        assert_eq!(b.front(), None);
    }
}
