//! Preprocessing utilities real trajectory data needs before
//! simplification: session splitting at recording gaps, time-uniform
//! resampling, and stationary-noise removal.
//!
//! The public Geolife/T-Drive dumps contain multi-day recordings with long
//! gaps (device off) and GPS jitter while parked; feeding those to a
//! simplifier as-is wastes budget on artifacts. The paper's evaluation
//! implicitly works on cleaned per-trip trajectories; these helpers make
//! that step explicit and testable.

use crate::point::Point;
use crate::traj::Trajectory;

/// Splits a trajectory into sessions wherever the time gap between
/// consecutive points exceeds `max_gap` seconds. Sessions with fewer than
/// `min_points` points are discarded.
pub fn split_by_gap(traj: &Trajectory, max_gap: f64, min_points: usize) -> Vec<Trajectory> {
    assert!(max_gap > 0.0, "gap threshold must be positive");
    let mut out = Vec::new();
    let mut cur: Vec<Point> = Vec::new();
    for &p in traj.points() {
        if let Some(last) = cur.last() {
            if p.t - last.t > max_gap {
                if cur.len() >= min_points {
                    out.push(Trajectory::new_unchecked(std::mem::take(&mut cur)));
                } else {
                    cur.clear();
                }
            }
        }
        cur.push(p);
    }
    if cur.len() >= min_points {
        out.push(Trajectory::new_unchecked(cur));
    }
    out
}

/// Resamples a trajectory to a uniform time grid with spacing `dt`,
/// linearly interpolating positions. The first and last original points
/// are always included (the grid is anchored at the first timestamp).
///
/// Returns the input unchanged if it has fewer than 2 points.
pub fn resample_uniform(traj: &Trajectory, dt: f64) -> Trajectory {
    assert!(dt > 0.0, "sampling interval must be positive");
    let pts = traj.points();
    if pts.len() < 2 {
        return traj.clone();
    }
    let t0 = pts[0].t;
    let t1 = pts[pts.len() - 1].t;
    let mut out = Vec::with_capacity(((t1 - t0) / dt) as usize + 2);
    let mut seg = 0usize;
    let mut t = t0;
    while t < t1 {
        while seg + 2 < pts.len() && pts[seg + 1].t <= t {
            seg += 1;
        }
        let (x, y) = pts[seg].interpolate_at(&pts[seg + 1], t);
        out.push(Point::new(x, y, t));
        t += dt;
    }
    out.push(pts[pts.len() - 1]);
    Trajectory::new_unchecked(out)
}

/// Collapses stationary jitter: consecutive points within `radius` of the
/// current anchor are merged into (anchor kept, last of the run kept when
/// the run spans more than `min_dwell` seconds — so dwell durations
/// survive).
pub fn collapse_stops(traj: &Trajectory, radius: f64, min_dwell: f64) -> Trajectory {
    assert!(radius >= 0.0, "radius must be non-negative");
    let pts = traj.points();
    if pts.len() < 3 {
        return traj.clone();
    }
    let mut out: Vec<Point> = vec![pts[0]];
    let mut anchor = pts[0];
    let mut run_last: Option<Point> = None;
    for &p in &pts[1..] {
        if p.dist(&anchor) <= radius {
            run_last = Some(p);
        } else {
            if let Some(last) = run_last.take() {
                if last.t - anchor.t >= min_dwell {
                    out.push(last); // keep the dwell's end
                }
            }
            out.push(p);
            anchor = p;
        }
    }
    if let Some(last) = run_last {
        if out.last().map(|q| q.t) != Some(last.t) {
            out.push(last);
        }
    }
    Trajectory::new_unchecked(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(xyt: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_xyt(xyt).unwrap()
    }

    #[test]
    fn split_by_gap_cuts_sessions() {
        let traj = t(&[
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 10.0),
            (2.0, 0.0, 20.0),
            // 10-hour gap
            (50.0, 0.0, 36_020.0),
            (51.0, 0.0, 36_030.0),
        ]);
        let sessions = split_by_gap(&traj, 3_600.0, 2);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 3);
        assert_eq!(sessions[1].len(), 2);
    }

    #[test]
    fn split_discards_short_sessions() {
        let traj = t(&[
            (0.0, 0.0, 0.0),
            // gap
            (9.0, 0.0, 10_000.0),
            // gap
            (20.0, 0.0, 20_000.0),
            (21.0, 0.0, 20_010.0),
            (22.0, 0.0, 20_020.0),
        ]);
        let sessions = split_by_gap(&traj, 100.0, 3);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 3);
    }

    #[test]
    fn split_no_gaps_is_identity() {
        let traj = t(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 2.0)]);
        let sessions = split_by_gap(&traj, 10.0, 2);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0], traj);
    }

    #[test]
    fn resample_positions_interpolate() {
        let traj = t(&[(0.0, 0.0, 0.0), (10.0, 0.0, 10.0), (10.0, 20.0, 30.0)]);
        let r = resample_uniform(&traj, 5.0);
        // Grid: 0, 5, 10, 15, 20, 25 + final point at t = 30.
        assert_eq!(r.len(), 7);
        assert!((r[1].x - 5.0).abs() < 1e-9);
        assert!((r[3].y - 5.0).abs() < 1e-9, "t=15 → y=5, got {}", r[3].y);
        assert_eq!(r.last().unwrap().t, 30.0);
        // Uniform spacing except the final anchor.
        for w in r.points()[..6].windows(2) {
            assert!((w[1].t - w[0].t - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_short_input_unchanged() {
        let traj = t(&[(1.0, 2.0, 3.0)]);
        assert_eq!(resample_uniform(&traj, 1.0), traj);
    }

    #[test]
    fn collapse_stops_removes_parking_jitter() {
        let mut xyt = vec![(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)];
        // Parked for 100 s with meter-level jitter.
        for i in 0..10 {
            xyt.push((10.0 + (i % 3) as f64 * 0.3, 0.2, 11.0 + i as f64 * 10.0));
        }
        xyt.push((30.0, 0.0, 120.0));
        let traj = t(&xyt);
        let cleaned = collapse_stops(&traj, 2.0, 30.0);
        // Jitter collapsed to the dwell's endpoints; movement points kept.
        assert!(cleaned.len() <= 5, "kept {} points", cleaned.len());
        assert_eq!(cleaned[0].t, 0.0);
        assert_eq!(cleaned.last().unwrap().t, 120.0);
        // Dwell end survives so the stop's duration is preserved.
        assert!(
            cleaned.iter().any(|p| (p.t - 101.0).abs() < 1e-9),
            "{cleaned:?}"
        );
    }

    #[test]
    fn collapse_keeps_moving_trajectories_intact() {
        let traj = t(&[
            (0.0, 0.0, 0.0),
            (10.0, 0.0, 1.0),
            (20.0, 0.0, 2.0),
            (30.0, 0.0, 3.0),
        ]);
        let cleaned = collapse_stops(&traj, 1.0, 10.0);
        assert_eq!(cleaned, traj);
    }

    #[test]
    fn pipeline_composes() {
        // gap-split → collapse → resample, end to end on a messy recording.
        let mut xyt = Vec::new();
        for i in 0..20 {
            xyt.push((i as f64 * 5.0, 0.0, i as f64 * 2.0));
        }
        for i in 0..5 {
            xyt.push((95.0 + (i % 2) as f64 * 0.1, 0.0, 40.0 + i as f64 * 5.0));
        }
        for i in 0..10 {
            xyt.push((200.0 + i as f64 * 5.0, 0.0, 10_000.0 + i as f64 * 2.0));
        }
        let raw = t(&xyt);
        let sessions = split_by_gap(&raw, 1_000.0, 5);
        assert_eq!(sessions.len(), 2);
        for s in &sessions {
            let cleaned = collapse_stops(s, 1.0, 8.0);
            let resampled = resample_uniform(&cleaned, 4.0);
            assert!(resampled.len() >= 2);
            for w in resampled.points().windows(2) {
                assert!(w[1].t >= w[0].t);
            }
        }
    }
}
