//! Zero-copy trajectory views: a borrowed point slice plus an anchor range.
//!
//! A [`TrajView`] is how batch consumers talk to the range kernels without
//! copying points or hand-rolling index loops. It borrows the original
//! points and names one anchor span `(s, e)`; the kernels then sweep the
//! units anchored to that span. Use a full [`Trajectory`](crate::Trajectory)
//! when you need owned, validated storage; use a `TrajView` when you already
//! hold `&[Point]` and only need to *score* a range (DESIGN.md §11).

use super::kernel::{
    range_error_stats, range_max_error, range_within, range_worst, ErrorMeasure, RangeStats,
};
use super::Measure;
use crate::point::Point;
use crate::segment::Segment;

/// A borrowed view of one anchor span `(s, e)` over an original point
/// sequence: the anchor segment runs `pts[s] → pts[e]` and covers every
/// original unit anchored to it (points `s+1..e` for SED/PED, movement
/// segments `s..e` for DAD/SAD).
///
/// Copyable and allocation-free: carving sub-views is index arithmetic on
/// the same borrowed slice.
///
/// # Example
///
/// ```
/// use trajectory::error::{segment_error, Measure, Sed, TrajView};
/// use trajectory::Point;
///
/// let pts: Vec<Point> = (0..8)
///     .map(|i| Point::new(i as f64, if i == 4 { 3.0 } else { 0.0 }, i as f64))
///     .collect();
/// let view = TrajView::anchor(&pts, 0, 7);
/// // Statically-known measure → monomorphized kernel:
/// let stats = view.error_stats::<Sed>();
/// // Runtime measure → same kernel behind one dispatch:
/// assert_eq!(stats.max, view.max_error_for(Measure::Sed));
/// assert_eq!(stats.max, segment_error(Measure::Sed, &pts, 0, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajView<'a> {
    pts: &'a [Point],
    s: usize,
    e: usize,
}

impl<'a> TrajView<'a> {
    /// Views the anchor span `(s, e)` of `pts`.
    ///
    /// # Panics
    /// Panics if `s >= e` or `e >= pts.len()`.
    pub fn anchor(pts: &'a [Point], s: usize, e: usize) -> Self {
        assert!(
            s < e && e < pts.len(),
            "invalid segment range ({s}, {e}) for {} points",
            pts.len()
        );
        TrajView { pts, s, e }
    }

    /// Views the whole sequence as one anchor span (endpoint simplification).
    ///
    /// # Panics
    /// Panics if `pts` has fewer than two points.
    pub fn full(pts: &'a [Point]) -> Self {
        Self::anchor(pts, 0, pts.len() - 1)
    }

    /// A sub-view over the span `(s, e)` of the same underlying points.
    ///
    /// # Panics
    /// Panics if `s >= e` or `e >= pts.len()`.
    pub fn subspan(&self, s: usize, e: usize) -> TrajView<'a> {
        Self::anchor(self.pts, s, e)
    }

    /// The underlying original points (the full slice, not just the span).
    pub fn points(&self) -> &'a [Point] {
        self.pts
    }

    /// Start index of the anchor span.
    pub fn start(&self) -> usize {
        self.s
    }

    /// End index of the anchor span.
    pub fn end(&self) -> usize {
        self.e
    }

    /// The anchor segment `pts[s] → pts[e]`.
    pub fn segment(&self) -> Segment {
        Segment::new(self.pts[self.s], self.pts[self.e])
    }

    /// Whether the span covers no interior point (`e == s + 1`).
    pub fn is_adjacent(&self) -> bool {
        self.e == self.s + 1
    }

    /// Range error statistics under a compile-time measure.
    #[inline]
    pub fn error_stats<M: ErrorMeasure>(&self) -> RangeStats {
        range_error_stats::<M>(self.pts, self.s, self.e)
    }

    /// Maximum anchored error (paper Eq. (12)) under a compile-time measure.
    #[inline]
    pub fn max_error<M: ErrorMeasure>(&self) -> f64 {
        range_max_error::<M>(self.pts, self.s, self.e)
    }

    /// Worst anchored unit and its split index under a compile-time measure
    /// (`None` if the span has no interior).
    #[inline]
    pub fn worst<M: ErrorMeasure>(&self) -> Option<(f64, usize)> {
        range_worst::<M>(self.pts, self.s, self.e)
    }

    /// Whether every anchored unit stays within `bound` under a
    /// compile-time measure.
    #[inline]
    pub fn within<M: ErrorMeasure>(&self, bound: f64) -> bool {
        range_within::<M>(self.pts, self.s, self.e, bound)
    }

    /// [`TrajView::error_stats`] for a runtime measure (one dispatch, then
    /// the monomorphized kernel).
    pub fn error_stats_for(&self, measure: Measure) -> RangeStats {
        crate::dispatch!(measure, M => self.error_stats::<M>())
    }

    /// [`TrajView::max_error`] for a runtime measure.
    pub fn max_error_for(&self, measure: Measure) -> f64 {
        crate::dispatch!(measure, M => self.max_error::<M>())
    }

    /// [`TrajView::worst`] for a runtime measure.
    pub fn worst_for(&self, measure: Measure) -> Option<(f64, usize)> {
        crate::dispatch!(measure, M => self.worst::<M>())
    }

    /// [`TrajView::within`] for a runtime measure.
    pub fn within_for(&self, measure: Measure, bound: f64) -> bool {
        crate::dispatch!(measure, M => self.within::<M>(bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{segment_error, segment_error_stats, Sed};

    fn zig(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, (i % 3) as f64, i as f64))
            .collect()
    }

    #[test]
    fn view_matches_free_functions() {
        let pts = zig(12);
        for m in Measure::ALL {
            for (s, e) in [(0, 11), (2, 7), (5, 6)] {
                let v = TrajView::anchor(&pts, s, e);
                let (fm, fs, fc) = segment_error_stats(m, &pts, s, e);
                let stats = v.error_stats_for(m);
                assert_eq!(fm.to_bits(), stats.max.to_bits(), "{m}");
                assert_eq!(fs.to_bits(), stats.sum.to_bits(), "{m}");
                assert_eq!(fc, stats.count, "{m}");
                assert_eq!(
                    v.max_error_for(m).to_bits(),
                    segment_error(m, &pts, s, e).to_bits()
                );
            }
        }
    }

    #[test]
    fn full_and_subspan_navigation() {
        let pts = zig(9);
        let v = TrajView::full(&pts);
        assert_eq!((v.start(), v.end()), (0, 8));
        assert_eq!(v.points().len(), 9);
        let sub = v.subspan(3, 4);
        assert!(sub.is_adjacent() && !v.is_adjacent());
        assert_eq!(sub.segment().start, pts[3]);
        assert_eq!(sub.error_stats::<Sed>().count, 0);
    }

    #[test]
    fn within_is_consistent_with_max() {
        let pts = zig(15);
        for m in Measure::ALL {
            let v = TrajView::anchor(&pts, 1, 13);
            let max = v.max_error_for(m);
            assert!(v.within_for(m, max));
            assert!(!v.within_for(m, max - 1e-9) || max == 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn anchor_rejects_empty_span() {
        let pts = zig(4);
        TrajView::anchor(&pts, 2, 2);
    }

    #[test]
    fn worst_for_agrees_with_generic() {
        let pts = zig(20);
        for m in Measure::ALL {
            let v = TrajView::anchor(&pts, 0, 19);
            let a = v.worst_for(m);
            let b = crate::dispatch!(m, M => v.worst::<M>());
            assert_eq!(a, b, "{m}");
        }
    }
}
