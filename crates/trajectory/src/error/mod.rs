//! The four error measures of the RLTS paper — SED, PED, DAD, SAD — and the
//! anchor-segment error semantics built on top of them.
//!
//! For a simplified trajectory `T' = ⟨p_{s_1},…,p_{s_m}⟩` of `T`, each
//! original point `p_i` with `s_j ≤ i ≤ s_{j+1}` takes the segment
//! `p_{s_j} p_{s_{j+1}}` as its *anchor segment*. The error of a segment is
//! the maximum error over its anchored points, and the error of `T'` is the
//! maximum (optionally mean) over segments.
//!
//! Two flavours of kernels are exposed:
//!
//! * [`drop_error`] — the *online* three-point kernel `ε(ab | d)`: the error
//!   introduced by dropping `d` when only its buffer neighbours `a` and `b`
//!   are accessible (Eq. (1) of the paper);
//! * [`segment_error`] — the *batch* range kernel (Eq. (12)): the max error
//!   of segment `(s, e)` over **all** original points anchored to it.
//!
//! Both come in two tiers (DESIGN.md §11): the functions taking a [`Measure`]
//! value are thin *front-ends* that lower the enum to a zero-sized kernel
//! type exactly once and then run a fully monomorphized loop. Hot code that
//! already knows its measure — or that loops over many ranges for one
//! measure — should hoist the dispatch itself via
//! [`dispatch!`](crate::dispatch) and call the [`kernel`] functions (or a
//! [`TrajView`]) with an explicit [`ErrorMeasure`] parameter.

mod dad;
pub mod kernel;
mod ped;
mod profile;
mod sad;
mod sed;
pub mod soa;
pub mod view;

pub use dad::{dad_drop_error, dad_point_error};
pub use kernel::{
    fill_range_errors, range_error_stats, range_max_error, range_within, range_worst,
    trajectory_error, Dad, ErrorMeasure, Ped, RangeStats, Sad, Sed,
};
pub use ped::{ped_drop_error, ped_point_error};
pub use profile::ErrorProfile;
pub use sad::{sad_drop_error, sad_point_error};
pub use sed::{sed_drop_error, sed_point_error};
pub use soa::{
    range_error_stats_cols, range_max_error_cols, range_within_cols, range_worst_cols,
    trajectory_error_cols,
};
pub use view::TrajView;

use crate::point::Point;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// The error measure used to score a simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Synchronized Euclidean distance (position error at matched times).
    Sed,
    /// Perpendicular Euclidean distance (spatial deviation from the line).
    Ped,
    /// Direction-aware distance (angular deviation of movement, radians).
    Dad,
    /// Speed-aware distance (speed deviation of movement).
    Sad,
}

impl Measure {
    /// All four measures, in the paper's order.
    pub const ALL: [Measure; 4] = [Measure::Sed, Measure::Ped, Measure::Dad, Measure::Sad];

    /// Paper reporting unit for this measure (§VI-A).
    pub fn unit(&self) -> &'static str {
        match self {
            Measure::Sed | Measure::Ped => "10m",
            Measure::Dad => "rad",
            Measure::Sad => "10m/s",
        }
    }

    /// Short lowercase name (`sed`/`ped`/`dad`/`sad`).
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Sed => "sed",
            Measure::Ped => "ped",
            Measure::Dad => "dad",
            Measure::Sad => "sad",
        }
    }

    /// Whether this measure anchors *movement segments* `p_i → p_{i+1}`
    /// (DAD/SAD) rather than single positions (SED/PED) — the runtime twin
    /// of [`ErrorMeasure::SEGMENT_BASED`].
    pub fn segment_based(&self) -> bool {
        matches!(self, Measure::Dad | Measure::Sad)
    }

    /// Parses a measure from its (case-insensitive) short name.
    pub fn parse(s: &str) -> Option<Measure> {
        match s.to_ascii_lowercase().as_str() {
            "sed" => Some(Measure::Sed),
            "ped" => Some(Measure::Ped),
            "dad" => Some(Measure::Dad),
            "sad" => Some(Measure::Sad),
            _ => None,
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Measure::Sed => "SED",
            Measure::Ped => "PED",
            Measure::Dad => "DAD",
            Measure::Sad => "SAD",
        })
    }
}

/// How per-point errors aggregate into a trajectory error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Aggregation {
    /// Maximum error over all anchored points (the paper's Min-Error target).
    #[default]
    Max,
    /// Mean error over all anchored points.
    Mean,
}

/// The online three-point kernel `ε(ab | d)`: error introduced by dropping
/// the middle point `d` whose surviving neighbours are `a` and `b`.
///
/// For SED/PED this is the positional error of `d` itself against the merged
/// segment `ab`. For DAD/SAD the two destroyed movement segments `ad` and
/// `db` are both approximated by `ab`, so the kernel is the worse of the two
/// deviations (the paper's online adaptation for DAD/SAD, §IV-A1).
///
/// # Example
///
/// ```
/// use trajectory::error::{drop_error, Measure, Sed, ErrorMeasure};
/// use trajectory::Point;
///
/// let a = Point::new(0.0, 0.0, 0.0);
/// let d = Point::new(1.0, 1.0, 1.0);
/// let b = Point::new(2.0, 0.0, 2.0);
/// // The enum front-end and the monomorphized kernel agree bit-for-bit.
/// assert_eq!(drop_error(Measure::Sed, &a, &d, &b), Sed::drop_error(&a, &d, &b));
/// ```
pub fn drop_error(measure: Measure, a: &Point, d: &Point, b: &Point) -> f64 {
    crate::dispatch!(measure, M => M::drop_error(a, d, b))
}

/// Error of the anchor segment `seg` w.r.t. one original point.
///
/// For SED/PED, `i` indexes the anchored point itself (`s < i < e` in range
/// terms). For DAD/SAD, `i` indexes a movement segment `p_i p_{i+1}`
/// (`s ≤ i < e`), following the definitions in DESIGN.md §7.
pub fn point_error(measure: Measure, seg: &Segment, pts: &[Point], i: usize) -> f64 {
    crate::dispatch!(measure, M => M::point_error(seg, pts, i))
}

/// The batch range kernel (paper Eq. (12)): maximum error of the anchor
/// segment `(s, e)` over all original points of `pts` anchored to it.
///
/// # Panics
/// Panics if `s >= e` or `e >= pts.len()`.
pub fn segment_error(measure: Measure, pts: &[Point], s: usize, e: usize) -> f64 {
    let (max, _, _) = segment_error_stats(measure, pts, s, e);
    max
}

/// Like [`segment_error`] but also returns the sum of per-point errors and
/// the number of contributing points (for mean aggregation).
///
/// A thin front-end over [`range_error_stats`]: one dispatch on `measure`,
/// then the monomorphized range kernel.
pub fn segment_error_stats(
    measure: Measure,
    pts: &[Point],
    s: usize,
    e: usize,
) -> (f64, f64, usize) {
    let stats = crate::dispatch!(measure, M => range_error_stats::<M>(pts, s, e));
    (stats.max, stats.sum, stats.count)
}

/// Error of a simplified trajectory given the sorted kept indices into
/// `pts`, under the given measure and aggregation.
///
/// `kept` must be strictly increasing, start at `0`, and end at
/// `pts.len() - 1` (the problem definition always keeps the two endpoints).
///
/// # Panics
/// Panics if `kept` violates the constraints above.
pub fn simplification_error(
    measure: Measure,
    pts: &[Point],
    kept: &[usize],
    agg: Aggregation,
) -> f64 {
    crate::dispatch!(measure, M => trajectory_error::<M>(pts, kept, agg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y, t)| Point::new(x, y, t)).collect()
    }

    #[test]
    fn measure_parse_roundtrip() {
        for m in Measure::ALL {
            assert_eq!(Measure::parse(m.name()), Some(m));
            assert_eq!(Measure::parse(&m.to_string()), Some(m));
        }
        assert_eq!(Measure::parse("nope"), None);
    }

    #[test]
    fn keeping_everything_has_zero_error() {
        let p = pts(&[
            (0.0, 0.0, 0.0),
            (1.0, 5.0, 1.0),
            (2.0, -3.0, 2.0),
            (3.0, 0.0, 3.0),
        ]);
        let kept: Vec<usize> = (0..p.len()).collect();
        for m in Measure::ALL {
            assert_eq!(
                simplification_error(m, &p, &kept, Aggregation::Max),
                0.0,
                "{m}"
            );
        }
    }

    #[test]
    fn collinear_constant_speed_has_zero_error() {
        // Straight line at constant speed: dropping interior points is free
        // under all four measures.
        let p = pts(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
            (2.0, 2.0, 2.0),
            (3.0, 3.0, 3.0),
        ]);
        let kept = vec![0, 3];
        for m in Measure::ALL {
            let e = simplification_error(m, &p, &kept, Aggregation::Max);
            assert!(e < 1e-9, "{m}: {e}");
        }
    }

    #[test]
    fn sed_detour_error() {
        // Detour point at (1, 1): at t=1 the anchor segment is at (1, 0).
        let p = pts(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 0.0, 2.0)]);
        let e = simplification_error(Measure::Sed, &p, &[0, 2], Aggregation::Max);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_dominates_mean() {
        let p = pts(&[
            (0.0, 0.0, 0.0),
            (1.0, 2.0, 1.0),
            (2.0, 0.5, 2.0),
            (3.0, 0.0, 3.0),
        ]);
        for m in Measure::ALL {
            let mx = simplification_error(m, &p, &[0, 3], Aggregation::Max);
            let me = simplification_error(m, &p, &[0, 3], Aggregation::Mean);
            assert!(mx >= me - 1e-12, "{m}: max {mx} < mean {me}");
        }
    }

    #[test]
    fn segment_error_matches_manual_max() {
        let p = pts(&[
            (0.0, 0.0, 0.0),
            (1.0, 3.0, 1.0),
            (2.0, 1.0, 2.0),
            (3.0, 0.0, 3.0),
        ]);
        let seg = Segment::new(p[0], p[3]);
        let manual = sed_point_error(&seg, &p[1]).max(sed_point_error(&seg, &p[2]));
        assert!((segment_error(Measure::Sed, &p, 0, 3) - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn simplification_error_requires_first_kept() {
        let p = pts(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 2.0)]);
        simplification_error(Measure::Sed, &p, &[1, 2], Aggregation::Max);
    }

    #[test]
    #[should_panic]
    fn segment_error_rejects_empty_range() {
        let p = pts(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]);
        segment_error(Measure::Sed, &p, 1, 1);
    }

    #[test]
    fn drop_error_zero_for_redundant_point() {
        let a = Point::new(0.0, 0.0, 0.0);
        let d = Point::new(1.0, 1.0, 1.0);
        let b = Point::new(2.0, 2.0, 2.0);
        for m in Measure::ALL {
            assert!(drop_error(m, &a, &d, &b) < 1e-9, "{m}");
        }
    }

    #[test]
    fn dad_sad_count_movement_segments() {
        // A right-angle turn with a speed change produces nonzero DAD and SAD.
        let p = pts(&[(0.0, 0.0, 0.0), (2.0, 0.0, 1.0), (2.0, 1.0, 2.0)]);
        let dad = simplification_error(Measure::Dad, &p, &[0, 2], Aggregation::Max);
        let sad = simplification_error(Measure::Sad, &p, &[0, 2], Aggregation::Max);
        assert!(dad > 0.1, "dad {dad}");
        assert!(sad > 0.1, "sad {sad}");
    }
}
