//! Speed-Aware Distance (SAD).
//!
//! The error of an anchor segment w.r.t. a *movement* segment `p_i p_{i+1}`
//! of the original trajectory is the absolute difference between the average
//! speed of the movement segment and the average speed of the anchor
//! segment. Zero-duration movement segments contribute no speed error.

use crate::point::Point;
use crate::segment::Segment;

/// SAD error of anchor segment `seg` w.r.t. movement segment `p → q`.
pub fn sad_point_error(seg: &Segment, p: &Point, q: &Point) -> f64 {
    let Some(move_speed) = p.speed_to(q) else {
        return 0.0; // instantaneous pair carries no measurable speed
    };
    // A zero-duration anchor segment approximates movement that takes time
    // only if timestamps collide; treat its speed as the movement speed
    // projected to zero time span — i.e. error equals the movement speed.
    let seg_speed = seg.speed().unwrap_or(0.0);
    (move_speed - seg_speed).abs()
}

/// Online three-point SAD kernel: dropping `d` replaces movement segments
/// `ad` and `db` with `ab`; the error is the worse of the two speed
/// deviations from `ab`'s average speed.
pub fn sad_drop_error(a: &Point, d: &Point, b: &Point) -> f64 {
    let seg = Segment::new(*a, *b);
    sad_point_error(&seg, a, d).max(sad_point_error(&seg, d, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_zero_sad() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(3.0, 0.0, 3.0);
        let q = Point::new(6.0, 0.0, 6.0);
        assert!(sad_point_error(&seg, &p, &q) < 1e-12);
    }

    #[test]
    fn speed_difference_is_absolute() {
        // Anchor speed 1; movement speed 3.
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(0.0, 0.0, 2.0);
        let q = Point::new(3.0, 0.0, 3.0);
        assert!((sad_point_error(&seg, &p, &q) - 2.0).abs() < 1e-12);
        // Slower movement, same magnitude of deviation.
        let q2 = Point::new(0.0, 0.0, 3.0); // speed 0
        assert!((sad_point_error(&seg, &p, &q2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_movement_no_error() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(3.0, 0.0, 3.0);
        let q = Point::new(9.0, 0.0, 3.0); // dt = 0
        assert_eq!(sad_point_error(&seg, &p, &q), 0.0);
    }

    #[test]
    fn sad_insensitive_to_direction() {
        // SAD compares speeds only: a U-turn at the same speed is free.
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(2.0, 0.0, 2.0));
        let p = Point::new(1.0, 0.0, 1.0);
        let q = Point::new(0.0, 0.0, 2.0); // backwards at speed 1 = segment speed
        assert!(sad_point_error(&seg, &p, &q) < 1e-12);
    }

    #[test]
    fn drop_kernel_takes_worse_side() {
        // ab speed = 2/4 = 0.5; ad speed = 3 (err 2.5); db speed = 1/3 (err ~0.1667).
        let a = Point::new(0.0, 0.0, 0.0);
        let d = Point::new(3.0, 0.0, 1.0);
        let b = Point::new(2.0, 0.0, 4.0);
        let e = sad_drop_error(&a, &d, &b);
        assert!((e - 2.5).abs() < 1e-12);
    }
}
