//! Per-point error profiles: where along the trajectory a simplification
//! hurts, not just how much at worst. Used for diagnostics, plotting, and
//! the case-study experiment.

use crate::error::{fill_range_errors, Measure};
use crate::point::Point;

/// The error contribution of each original point under a simplification.
///
/// Entry `i` is the error of original point `p_i` (for SED/PED) or movement
/// segment `p_i p_{i+1}` (for DAD/SAD, last entry 0) against its anchor
/// segment; kept points contribute 0 for SED/PED.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    /// Measure the profile was computed under.
    pub measure: Measure,
    /// Per-original-point errors (length = number of original points).
    pub errors: Vec<f64>,
}

impl ErrorProfile {
    /// Computes the profile of a simplification given the kept indices
    /// (same contract as
    /// [`simplification_error`](crate::error::simplification_error)).
    pub fn compute(measure: Measure, pts: &[Point], kept: &[usize]) -> ErrorProfile {
        assert!(
            pts.len() >= 2 && kept.len() >= 2,
            "need at least two points"
        );
        assert_eq!(kept[0], 0, "first point must be kept");
        assert_eq!(
            *kept.last().unwrap(),
            pts.len() - 1,
            "last point must be kept"
        );
        let mut errors = vec![0.0; pts.len()];
        // Dispatch once, then run the monomorphized fill kernel per window.
        crate::dispatch!(measure, M => {
            for w in kept.windows(2) {
                debug_assert!(w[0] < w[1]);
                fill_range_errors::<M>(pts, w[0], w[1], &mut errors);
            }
        });
        ErrorProfile { measure, errors }
    }

    /// The maximum entry (equals the max-aggregated simplification error).
    pub fn max(&self) -> f64 {
        self.errors.iter().cloned().fold(0.0, f64::max)
    }

    /// Index of the worst original point.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.errors.iter().enumerate() {
            if v > self.errors[best] {
                best = i;
            }
        }
        best
    }

    /// The `q`-quantile of the non-zero error entries (`q ∈ [0, 1]`;
    /// nearest-rank). Returns 0 when every entry is 0.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut nz: Vec<f64> = self.errors.iter().cloned().filter(|&v| v > 0.0).collect();
        if nz.is_empty() {
            return 0.0;
        }
        nz.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * nz.len() as f64).ceil() as usize).clamp(1, nz.len());
        nz[rank - 1]
    }

    /// Fraction of original points with error above `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().filter(|&&v| v > threshold).count() as f64 / self.errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{simplification_error, Aggregation};

    fn pts() -> Vec<Point> {
        (0..12)
            .map(|i| {
                let f = i as f64;
                Point::new(f, if i == 5 { 4.0 } else { (f * 0.8).sin() }, f)
            })
            .collect()
    }

    #[test]
    fn max_matches_simplification_error() {
        let p = pts();
        let kept = vec![0, 3, 8, 11];
        for m in Measure::ALL {
            let profile = ErrorProfile::compute(m, &p, &kept);
            let direct = simplification_error(m, &p, &kept, Aggregation::Max);
            assert!((profile.max() - direct).abs() < 1e-12, "{m}");
            assert_eq!(profile.errors.len(), p.len());
        }
    }

    #[test]
    fn kept_points_have_zero_positional_error() {
        let p = pts();
        let kept = vec![0, 3, 8, 11];
        let profile = ErrorProfile::compute(Measure::Sed, &p, &kept);
        for &i in &kept {
            assert_eq!(profile.errors[i], 0.0, "kept point {i}");
        }
    }

    #[test]
    fn argmax_points_at_the_spike() {
        let p = pts();
        let kept = vec![0, 11];
        let profile = ErrorProfile::compute(Measure::Ped, &p, &kept);
        assert_eq!(profile.argmax(), 5);
    }

    #[test]
    fn quantiles_are_monotone() {
        let p = pts();
        let kept = vec![0, 6, 11];
        let profile = ErrorProfile::compute(Measure::Sed, &p, &kept);
        let q25 = profile.quantile(0.25);
        let q50 = profile.quantile(0.5);
        let q100 = profile.quantile(1.0);
        assert!(q25 <= q50 && q50 <= q100);
        assert!((q100 - profile.max()).abs() < 1e-12);
    }

    #[test]
    fn fraction_above_counts() {
        let p = pts();
        let profile = ErrorProfile::compute(Measure::Ped, &p, &[0, 11]);
        assert_eq!(profile.fraction_above(f64::MAX), 0.0);
        assert!(profile.fraction_above(0.0) > 0.5); // most interior points deviate
        assert!(profile.fraction_above(0.0) <= 1.0);
    }

    #[test]
    fn full_keep_is_all_zero() {
        let p = pts();
        let kept: Vec<usize> = (0..p.len()).collect();
        for m in Measure::ALL {
            let profile = ErrorProfile::compute(m, &p, &kept);
            assert!(profile.max() < 1e-12, "{m}");
            assert_eq!(profile.quantile(0.9), 0.0, "{m}");
        }
    }
}
