//! Direction-Aware Distance (DAD).
//!
//! The error of an anchor segment w.r.t. a *movement* segment `p_i p_{i+1}`
//! of the original trajectory is the absolute angular difference (in
//! `[0, π]`) between the two directions. Degenerate (zero-length) movement
//! contributes no directional error; a degenerate anchor segment against
//! real movement contributes the maximum error `π/2` by the convention of
//! the direction-aware simplification literature (a stationary approximation
//! cannot represent any direction).

use crate::point::{angular_difference, Point};
use crate::segment::Segment;
use std::f64::consts::FRAC_PI_2;

/// DAD error of anchor segment `seg` w.r.t. movement segment `p → q`.
pub fn dad_point_error(seg: &Segment, p: &Point, q: &Point) -> f64 {
    let Some(move_dir) = p.direction_to(q) else {
        return 0.0; // no movement, no direction to misrepresent
    };
    match seg.direction() {
        Some(seg_dir) => angular_difference(move_dir, seg_dir),
        None => FRAC_PI_2,
    }
}

/// Online three-point DAD kernel: dropping `d` replaces movement segments
/// `ad` and `db` with `ab`; the error is the worse of the two angular
/// deviations from `ab`'s direction.
pub fn dad_drop_error(a: &Point, d: &Point, b: &Point) -> f64 {
    let seg = Segment::new(*a, *b);
    dad_point_error(&seg, a, d).max(dad_point_error(&seg, d, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn straight_movement_zero_dad() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(2.0, 0.0, 2.0);
        let q = Point::new(5.0, 0.0, 5.0);
        assert_eq!(dad_point_error(&seg, &p, &q), 0.0);
    }

    #[test]
    fn orthogonal_movement_is_half_pi() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(5.0, 0.0, 5.0);
        let q = Point::new(5.0, 3.0, 6.0);
        assert!((dad_point_error(&seg, &p, &q) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn reverse_movement_is_pi() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(5.0, 0.0, 5.0);
        let q = Point::new(2.0, 0.0, 6.0);
        assert!((dad_point_error(&seg, &p, &q) - PI).abs() < 1e-12);
    }

    #[test]
    fn stationary_movement_has_no_error() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(5.0, 1.0, 5.0);
        assert_eq!(dad_point_error(&seg, &p, &p), 0.0);
    }

    #[test]
    fn degenerate_anchor_against_movement() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(0.0, 0.0, 10.0));
        let p = Point::new(0.0, 0.0, 2.0);
        let q = Point::new(1.0, 0.0, 3.0);
        assert_eq!(dad_point_error(&seg, &p, &q), FRAC_PI_2);
    }

    #[test]
    fn drop_kernel_takes_worse_side() {
        // a→d heads 45° off, d→b heads 45° off the other way; ab is level.
        let a = Point::new(0.0, 0.0, 0.0);
        let d = Point::new(1.0, 1.0, 1.0);
        let b = Point::new(2.0, 0.0, 2.0);
        let e = dad_drop_error(&a, &d, &b);
        assert!((e - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn dad_bounded_by_pi() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 1.0));
        for ang in [0.0f64, 1.0, 2.0, 3.0, -2.5] {
            let p = Point::new(0.0, 0.0, 0.5);
            let q = Point::new(ang.cos(), ang.sin(), 0.6);
            let e = dad_point_error(&seg, &p, &q);
            assert!((0.0..=PI + 1e-12).contains(&e));
        }
    }
}
