//! Struct-of-arrays range kernels over [`ColsView`] columns.
//!
//! These are the columnar twins of the [`kernel`](super::kernel) batch
//! entry points: same assertions, same semantics, bit-identical results —
//! only the memory layout differs. Every per-segment invariant the
//! `&[Point]` kernels recompute per point (the SED interpolation basis,
//! the PED line normal, the DAD anchor direction, the SAD anchor speed)
//! is hoisted out of the loop here; hoisting is bit-exact because the
//! hoisted expressions depend only on the anchor endpoints. The SED/PED
//! inner loops are additionally split into a vectorizable arithmetic pass
//! over a stack chunk and an in-order scalar fold, so LLVM can use SIMD
//! for the interpolation while `max`/`sum` still accumulate in the exact
//! historical order (DESIGN.md §16).
//!
//! # Example
//!
//! ```
//! use trajectory::cols::TrajCols;
//! use trajectory::error::{range_error_stats, range_error_stats_cols, Dad};
//! use trajectory::Point;
//!
//! let pts: Vec<Point> = (0..8)
//!     .map(|i| Point::new(i as f64, if i % 3 == 0 { 1.0 } else { 0.0 }, i as f64))
//!     .collect();
//! let cols = TrajCols::from_points(&pts);
//! let aos = range_error_stats::<Dad>(&pts, 1, 6);
//! let soa = range_error_stats_cols::<Dad>(cols.view(), 1, 6);
//! assert_eq!(aos.sum.to_bits(), soa.sum.to_bits());
//! ```

use super::kernel::{ErrorMeasure, RangeStats};
use super::Measure;
use crate::cols::ColsView;
use crate::point::angular_difference;
use std::f64::consts::FRAC_PI_2;

/// Chunk width of the split SED loop: small enough to live on the stack,
/// large enough that the vector pass amortizes the loop overhead.
const CHUNK: usize = 128;

/// Hoisted per-segment invariants of the SED kernel: the interpolation
/// basis of `Segment::position_at` evaluated once per range.
#[derive(Clone, Copy)]
struct SedEval {
    x0: f64,
    y0: f64,
    t0: f64,
    dt: f64,
    dx: f64,
    dy: f64,
    /// `Point::interpolate_at`'s zero-duration branch, constant per range.
    degenerate: bool,
}

impl SedEval {
    #[inline]
    fn new(v: ColsView<'_>, s: usize, e: usize) -> Self {
        let (x0, y0, t0) = (v.xs[s], v.ys[s], v.ts[s]);
        let dt = v.ts[e] - t0;
        SedEval {
            x0,
            y0,
            t0,
            dt,
            dx: v.xs[e] - x0,
            dy: v.ys[e] - y0,
            degenerate: dt.abs() < f64::EPSILON,
        }
    }

    #[inline]
    fn err(&self, v: ColsView<'_>, i: usize) -> f64 {
        if self.degenerate {
            (v.xs[i] - self.x0).hypot(v.ys[i] - self.y0)
        } else {
            let r = (v.ts[i] - self.t0) / self.dt;
            (v.xs[i] - (self.x0 + r * self.dx)).hypot(v.ys[i] - (self.y0 + r * self.dy))
        }
    }
}

/// Hoisted per-segment invariants of the PED kernel: the line normal and
/// length of `Segment::dist_to_line` evaluated once per range.
#[derive(Clone, Copy)]
struct PedEval {
    ax: f64,
    ay: f64,
    dx: f64,
    dy: f64,
    len: f64,
}

impl PedEval {
    #[inline]
    fn new(v: ColsView<'_>, s: usize, e: usize) -> Self {
        let (ax, ay) = (v.xs[s], v.ys[s]);
        let (dx, dy) = (v.xs[e] - ax, v.ys[e] - ay);
        PedEval {
            ax,
            ay,
            dx,
            dy,
            len: (dx * dx + dy * dy).sqrt(),
        }
    }

    #[inline]
    fn err(&self, v: ColsView<'_>, i: usize) -> f64 {
        if self.len == 0.0 {
            (v.xs[i] - self.ax).hypot(v.ys[i] - self.ay)
        } else {
            ((v.xs[i] - self.ax) * self.dy - (v.ys[i] - self.ay) * self.dx).abs() / self.len
        }
    }
}

/// Hoisted per-segment invariant of the DAD kernel: the anchor direction
/// (`Segment::direction`, one `atan2`) evaluated once per range instead of
/// once per movement segment.
#[derive(Clone, Copy)]
struct DadEval {
    seg_dir: Option<f64>,
}

impl DadEval {
    #[inline]
    fn new(v: ColsView<'_>, s: usize, e: usize) -> Self {
        let dx = v.xs[e] - v.xs[s];
        let dy = v.ys[e] - v.ys[s];
        DadEval {
            seg_dir: if dx == 0.0 && dy == 0.0 {
                None
            } else {
                Some(dy.atan2(dx))
            },
        }
    }

    /// Error of movement segment `p_i → p_{i+1}`, matching
    /// `dad_point_error` bit for bit (the degenerate-movement early return
    /// fires before the anchor direction is consulted, exactly as in the
    /// point kernel).
    #[inline]
    fn err(&self, v: ColsView<'_>, i: usize) -> f64 {
        let dx = v.xs[i + 1] - v.xs[i];
        let dy = v.ys[i + 1] - v.ys[i];
        if dx == 0.0 && dy == 0.0 {
            return 0.0;
        }
        match self.seg_dir {
            Some(d) => angular_difference(dy.atan2(dx), d),
            None => FRAC_PI_2,
        }
    }
}

/// Hoisted per-segment invariant of the SAD kernel: the anchor speed
/// (`Segment::speed`, one `hypot` + division) evaluated once per range.
#[derive(Clone, Copy)]
struct SadEval {
    seg_speed: f64,
}

impl SadEval {
    #[inline]
    fn new(v: ColsView<'_>, s: usize, e: usize) -> Self {
        let dt = v.ts[e] - v.ts[s];
        SadEval {
            // `seg.speed().unwrap_or(0.0)` with the speed_to internals
            // inlined; `start.dist(end)` subtracts start - end.
            seg_speed: if dt.abs() < f64::EPSILON {
                0.0
            } else {
                (v.xs[s] - v.xs[e]).hypot(v.ys[s] - v.ys[e]) / dt
            },
        }
    }

    /// Error of movement segment `p_i → p_{i+1}`, matching
    /// `sad_point_error` bit for bit.
    #[inline]
    fn err(&self, v: ColsView<'_>, i: usize) -> f64 {
        let dt = v.ts[i + 1] - v.ts[i];
        if dt.abs() < f64::EPSILON {
            return 0.0;
        }
        let speed = (v.xs[i] - v.xs[i + 1]).hypot(v.ys[i] - v.ys[i + 1]) / dt;
        (speed - self.seg_speed).abs()
    }
}

fn sed_stats(v: ColsView<'_>, s: usize, e: usize) -> RangeStats {
    let ev = SedEval::new(v, s, e);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut exb = [0.0f64; CHUNK];
    let mut eyb = [0.0f64; CHUNK];
    let mut i = s + 1;
    while i < e {
        let len = (e - i).min(CHUNK);
        let xs = &v.xs[i..i + len];
        let ys = &v.ys[i..i + len];
        let ts = &v.ts[i..i + len];
        // Pass 1 — interpolation arithmetic into stack chunks: pure
        // sub/div/mul, autovectorizes. Pass 2 — the libm `hypot` plus the
        // `max`/`sum` fold, scalar and in the exact historical index order.
        if ev.degenerate {
            for (k, (&x, &y)) in xs.iter().zip(ys).enumerate() {
                exb[k] = x - ev.x0;
                eyb[k] = y - ev.y0;
            }
        } else {
            for (k, ((&x, &y), &t)) in xs.iter().zip(ys).zip(ts).enumerate() {
                let r = (t - ev.t0) / ev.dt;
                exb[k] = x - (ev.x0 + r * ev.dx);
                eyb[k] = y - (ev.y0 + r * ev.dy);
            }
        }
        for (&ex, &ey) in exb[..len].iter().zip(&eyb[..len]) {
            let err = ex.hypot(ey);
            max = max.max(err);
            sum += err;
        }
        i += len;
    }
    RangeStats {
        max,
        sum,
        count: e - (s + 1),
    }
}

fn ped_stats(v: ColsView<'_>, s: usize, e: usize) -> RangeStats {
    let ev = PedEval::new(v, s, e);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    // The PED unit error is branch-free arithmetic once the line normal is
    // hoisted (LLVM unswitches the degenerate branch); a bounds-check-free
    // zip over the two columns keeps the fold in the historical order.
    let xs = &v.xs[s + 1..e];
    let ys = &v.ys[s + 1..e];
    for (&x, &y) in xs.iter().zip(ys) {
        let err = if ev.len == 0.0 {
            (x - ev.ax).hypot(y - ev.ay)
        } else {
            ((x - ev.ax) * ev.dy - (y - ev.ay) * ev.dx).abs() / ev.len
        };
        max = max.max(err);
        sum += err;
    }
    RangeStats {
        max,
        sum,
        count: e - (s + 1),
    }
}

fn dad_stats(v: ColsView<'_>, s: usize, e: usize) -> RangeStats {
    let ev = DadEval::new(v, s, e);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for i in s..e {
        let err = ev.err(v, i);
        max = max.max(err);
        sum += err;
    }
    RangeStats {
        max,
        sum,
        count: e - s,
    }
}

fn sad_stats(v: ColsView<'_>, s: usize, e: usize) -> RangeStats {
    let ev = SadEval::new(v, s, e);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for i in s..e {
        let err = ev.err(v, i);
        max = max.max(err);
        sum += err;
    }
    RangeStats {
        max,
        sum,
        count: e - s,
    }
}

/// The batch range kernel over columns — the SoA twin of
/// [`range_error_stats`](super::range_error_stats), bit-identical on every
/// input.
///
/// # Panics
/// Panics if `s >= e` or `e >= v.len()`.
///
/// # Example
///
/// ```
/// use trajectory::cols::TrajCols;
/// use trajectory::error::{range_error_stats_cols, Ped};
/// use trajectory::Point;
///
/// let pts: Vec<Point> = (0..4)
///     .map(|i| Point::new(i as f64, if i == 2 { 3.0 } else { 0.0 }, i as f64))
///     .collect();
/// let cols = TrajCols::from_points(&pts);
/// let stats = range_error_stats_cols::<Ped>(cols.view(), 0, 3);
/// assert_eq!(stats.max, 3.0);
/// assert_eq!(stats.count, 2);
/// ```
pub fn range_error_stats_cols<M: ErrorMeasure>(v: ColsView<'_>, s: usize, e: usize) -> RangeStats {
    assert!(
        s < e && e < v.len(),
        "invalid segment range ({s}, {e}) for {} points",
        v.len()
    );
    match M::MEASURE {
        Measure::Sed => sed_stats(v, s, e),
        Measure::Ped => ped_stats(v, s, e),
        Measure::Dad => dad_stats(v, s, e),
        Measure::Sad => sad_stats(v, s, e),
    }
}

/// Maximum error of anchor range `(s, e)` over columns — the SoA twin of
/// [`range_max_error`](super::range_max_error).
///
/// # Panics
/// Panics if `s >= e` or `e >= v.len()`.
#[inline]
pub fn range_max_error_cols<M: ErrorMeasure>(v: ColsView<'_>, s: usize, e: usize) -> f64 {
    range_error_stats_cols::<M>(v, s, e).max
}

/// Worst-unit scan for positional measures: sweep `(s + 1)..e`, ties keep
/// the earliest unit.
#[inline]
fn worst_positional(s: usize, e: usize, err: impl Fn(usize) -> f64) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for i in (s + 1)..e {
        let err = err(i);
        if best.is_none_or(|(b, _)| err > b) {
            best = Some((err, i));
        }
    }
    best
}

/// Worst-unit scan for movement-segment measures: sweep `s..e` with the
/// split index clamped strictly inside `(s, e)`.
#[inline]
fn worst_segmental(s: usize, e: usize, err: impl Fn(usize) -> f64) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for i in s..e {
        let err = err(i);
        if best.is_none_or(|(b, _)| err > b) {
            let split = if i > s { i } else { i + 1 }.min(e - 1);
            best = Some((err, split));
        }
    }
    best
}

/// Worst anchored unit of range `(s, e)` over columns — the SoA twin of
/// [`range_worst`](super::range_worst): same split rule, same
/// ties-keep-earliest scan order.
///
/// # Panics
/// Panics if `e >= v.len()`.
pub fn range_worst_cols<M: ErrorMeasure>(
    v: ColsView<'_>,
    s: usize,
    e: usize,
) -> Option<(f64, usize)> {
    if e <= s + 1 {
        return None;
    }
    assert!(e < v.len(), "range end {e} out of bounds");
    match M::MEASURE {
        Measure::Sed => {
            let ev = SedEval::new(v, s, e);
            worst_positional(s, e, |i| ev.err(v, i))
        }
        Measure::Ped => {
            let ev = PedEval::new(v, s, e);
            worst_positional(s, e, |i| ev.err(v, i))
        }
        Measure::Dad => {
            let ev = DadEval::new(v, s, e);
            worst_segmental(s, e, |i| ev.err(v, i))
        }
        Measure::Sad => {
            let ev = SadEval::new(v, s, e);
            worst_segmental(s, e, |i| ev.err(v, i))
        }
    }
}

/// Whether every unit anchored to range `(s, e)` has error at most `bound`
/// — the SoA twin of [`range_within`](super::range_within), with the same
/// early exit on the first violation.
///
/// # Panics
/// Panics if `s >= e` or `e >= v.len()`.
pub fn range_within_cols<M: ErrorMeasure>(v: ColsView<'_>, s: usize, e: usize, bound: f64) -> bool {
    assert!(
        s < e && e < v.len(),
        "invalid segment range ({s}, {e}) for {} points",
        v.len()
    );
    let lo = if M::SEGMENT_BASED { s } else { s + 1 };
    match M::MEASURE {
        Measure::Sed => {
            let ev = SedEval::new(v, s, e);
            (lo..e).all(|i| ev.err(v, i) <= bound)
        }
        Measure::Ped => {
            let ev = PedEval::new(v, s, e);
            (lo..e).all(|i| ev.err(v, i) <= bound)
        }
        Measure::Dad => {
            let ev = DadEval::new(v, s, e);
            (lo..e).all(|i| ev.err(v, i) <= bound)
        }
        Measure::Sad => {
            let ev = SadEval::new(v, s, e);
            (lo..e).all(|i| ev.err(v, i) <= bound)
        }
    }
}

/// Error of a whole simplification over columns — the SoA twin of
/// [`trajectory_error`](super::trajectory_error), with the same kept-index
/// contract and the same left-to-right window fold.
///
/// # Panics
/// Panics if `kept` is not strictly increasing from `0` to `v.len() - 1`.
pub fn trajectory_error_cols<M: ErrorMeasure>(
    v: ColsView<'_>,
    kept: &[usize],
    agg: super::Aggregation,
) -> f64 {
    assert!(v.len() >= 2, "need at least two points");
    assert!(kept.len() >= 2, "need at least two kept indices");
    assert_eq!(kept[0], 0, "first point must be kept");
    assert_eq!(
        *kept.last().unwrap(),
        v.len() - 1,
        "last point must be kept"
    );
    let mut stats = RangeStats::default();
    for w in kept.windows(2) {
        assert!(w[0] < w[1], "kept indices must be strictly increasing");
        if w[1] - w[0] <= 1 && !M::SEGMENT_BASED {
            continue; // adjacent points introduce no positional error
        }
        stats.absorb(range_error_stats_cols::<M>(v, w[0], w[1]));
    }
    match agg {
        super::Aggregation::Max => stats.max,
        super::Aggregation::Mean => stats.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cols::TrajCols;
    use crate::error::{
        range_error_stats, range_max_error, range_within, range_worst, trajectory_error,
        Aggregation,
    };
    use crate::point::Point;

    /// Deterministic xorshift trajectory, mirroring the kernel-test
    /// generator (including the degenerate duplicate position/timestamp
    /// cases).
    fn lcg_points(seed: u64, n: usize) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                t += 0.25 + next() * 2.0;
                let (x, y) = if i % 7 == 3 {
                    (0.0, 0.0)
                } else {
                    (next() * 20.0 - 10.0, next() * 20.0 - 10.0)
                };
                let t = if i % 11 == 5 { t - 0.25 } else { t };
                Point::new(x, y, t)
            })
            .collect()
    }

    #[test]
    fn soa_stats_bit_identical_to_aos() {
        for seed in 1..30u64 {
            let pts = lcg_points(seed, 40);
            let cols = TrajCols::from_points(&pts);
            for m in Measure::ALL {
                for (s, e) in [(0, 39), (0, 1), (3, 17), (12, 13), (20, 39)] {
                    crate::dispatch!(m, M => {
                        let aos = range_error_stats::<M>(&pts, s, e);
                        let soa = range_error_stats_cols::<M>(cols.view(), s, e);
                        assert_eq!(aos.max.to_bits(), soa.max.to_bits(), "{m} max ({s},{e})");
                        assert_eq!(aos.sum.to_bits(), soa.sum.to_bits(), "{m} sum ({s},{e})");
                        assert_eq!(aos.count, soa.count, "{m} count ({s},{e})");
                        assert_eq!(
                            range_max_error::<M>(&pts, s, e).to_bits(),
                            range_max_error_cols::<M>(cols.view(), s, e).to_bits(),
                            "{m} range_max ({s},{e})"
                        );
                    });
                }
            }
        }
    }

    #[test]
    fn soa_stats_cross_chunk_boundaries() {
        // Ranges longer than CHUNK exercise the chunked fold seams.
        let pts = lcg_points(5, 3 * CHUNK + 7);
        let cols = TrajCols::from_points(&pts);
        let e = pts.len() - 1;
        for m in Measure::ALL {
            for s in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1] {
                crate::dispatch!(m, M => {
                    let aos = range_error_stats::<M>(&pts, s, e);
                    let soa = range_error_stats_cols::<M>(cols.view(), s, e);
                    assert_eq!(aos.max.to_bits(), soa.max.to_bits(), "{m} max ({s},{e})");
                    assert_eq!(aos.sum.to_bits(), soa.sum.to_bits(), "{m} sum ({s},{e})");
                    assert_eq!(aos.count, soa.count, "{m} count ({s},{e})");
                });
            }
        }
    }

    #[test]
    fn soa_worst_and_within_match_aos() {
        for seed in 1..20u64 {
            let pts = lcg_points(seed, 35);
            let cols = TrajCols::from_points(&pts);
            for m in Measure::ALL {
                for (s, e) in [(0, 34), (2, 3), (2, 4), (5, 20), (30, 34)] {
                    crate::dispatch!(m, M => {
                        let aos = range_worst::<M>(&pts, s, e);
                        let soa = range_worst_cols::<M>(cols.view(), s, e);
                        match (aos, soa) {
                            (None, None) => {}
                            (Some((ae, ai)), Some((se_, si))) => {
                                assert_eq!(ae.to_bits(), se_.to_bits(), "{m} worst err ({s},{e})");
                                assert_eq!(ai, si, "{m} worst split ({s},{e})");
                            }
                            other => panic!("{m} worst mismatch ({s},{e}): {other:?}"),
                        }
                        if e > s + 1 {
                            let max = range_error_stats::<M>(&pts, s, e).max;
                            for bound in [max, max * 0.5 - 1e-12, 0.0, f64::INFINITY] {
                                assert_eq!(
                                    range_within::<M>(&pts, s, e, bound),
                                    range_within_cols::<M>(cols.view(), s, e, bound),
                                    "{m} within ({s},{e}) bound {bound}"
                                );
                            }
                        }
                    });
                }
            }
        }
    }

    #[test]
    fn soa_trajectory_error_matches_aos() {
        for seed in 1..15u64 {
            let pts = lcg_points(seed, 30);
            let cols = TrajCols::from_points(&pts);
            let kept = vec![0, 1, 4, 11, 12, 20, 29];
            for m in Measure::ALL {
                for agg in [Aggregation::Max, Aggregation::Mean] {
                    crate::dispatch!(m, M => {
                        let aos = trajectory_error::<M>(&pts, &kept, agg);
                        let soa = trajectory_error_cols::<M>(cols.view(), &kept, agg);
                        assert_eq!(aos.to_bits(), soa.to_bits(), "{m} {agg:?}");
                    });
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid segment range")]
    fn soa_stats_rejects_empty_range() {
        let cols = TrajCols::from_points(&lcg_points(1, 8));
        range_error_stats_cols::<crate::error::Sed>(cols.view(), 3, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::cols::TrajCols;
    use crate::error::{range_error_stats, range_within, range_worst, Aggregation};
    use crate::point::Point;
    use proptest::prelude::*;

    prop_compose! {
        /// Random finite trajectory with strictly increasing time except
        /// for occasional duplicate timestamps (degenerate kernel
        /// branches), mirroring the kernel proptest generator.
        fn traj(max_len: usize)
            (n in 4..max_len)
            (coords in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0.01..2.0f64, prop::bool::ANY), n))
            -> Vec<Point>
        {
            let mut t = 0.0;
            coords
                .into_iter()
                .map(|(x, y, dt, dup)| {
                    if !dup {
                        t += dt;
                    }
                    Point::new(x, y, t)
                })
                .collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn soa_range_kernels_bit_identical_to_aos(
            pts in traj(160),
            s_frac in 0.0..1.0f64,
            e_frac in 0.0..1.0f64,
            bound_frac in 0.0..1.5f64,
        ) {
            let n = pts.len();
            let s = ((s_frac * (n - 2) as f64) as usize).min(n - 2);
            let e = s + 1 + ((e_frac * (n - 1 - s) as f64) as usize).min(n - 2 - s);
            let cols = TrajCols::from_points(&pts);
            for m in Measure::ALL {
                crate::dispatch!(m, M => {
                    let aos = range_error_stats::<M>(&pts, s, e);
                    let soa = range_error_stats_cols::<M>(cols.view(), s, e);
                    prop_assert_eq!(aos.max.to_bits(), soa.max.to_bits(), "{} max", m);
                    prop_assert_eq!(aos.sum.to_bits(), soa.sum.to_bits(), "{} sum", m);
                    prop_assert_eq!(aos.count, soa.count, "{} count", m);

                    prop_assert_eq!(
                        range_worst::<M>(&pts, s, e).map(|(err, i)| (err.to_bits(), i)),
                        range_worst_cols::<M>(cols.view(), s, e).map(|(err, i)| (err.to_bits(), i)),
                        "{} worst", m
                    );

                    let bound = aos.max * bound_frac;
                    prop_assert_eq!(
                        range_within::<M>(&pts, s, e, bound),
                        range_within_cols::<M>(cols.view(), s, e, bound),
                        "{} within", m
                    );
                });
            }
        }

        #[test]
        fn soa_trajectory_error_bit_identical_to_aos(
            pts in traj(80),
            keep_mask in prop::collection::vec(prop::bool::ANY, 80),
        ) {
            let n = pts.len();
            let mut kept = vec![0];
            kept.extend((1..n - 1).filter(|&i| keep_mask[i % keep_mask.len()]));
            kept.push(n - 1);
            let cols = TrajCols::from_points(&pts);
            for m in Measure::ALL {
                for agg in [Aggregation::Max, Aggregation::Mean] {
                    crate::dispatch!(m, M => {
                        let aos = crate::error::trajectory_error::<M>(&pts, &kept, agg);
                        let soa = trajectory_error_cols::<M>(cols.view(), &kept, agg);
                        prop_assert_eq!(aos.to_bits(), soa.to_bits(), "{} {:?}", m, agg);
                    });
                }
            }
        }
    }
}
