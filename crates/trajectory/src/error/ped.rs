//! Perpendicular Euclidean Distance (PED).
//!
//! The error of an anchor segment w.r.t. an anchored point `p` is the
//! perpendicular distance from `p`'s location to the supporting line of the
//! segment (the Douglas–Peucker distance).

use crate::point::Point;
use crate::segment::Segment;

/// PED error of anchor segment `seg` w.r.t. point `p`.
#[inline]
pub fn ped_point_error(seg: &Segment, p: &Point) -> f64 {
    seg.dist_to_line(p.x, p.y)
}

/// Online three-point PED kernel: perpendicular distance of `d` to line `ab`.
#[inline]
pub fn ped_drop_error(a: &Point, d: &Point, b: &Point) -> f64 {
    ped_point_error(&Segment::new(*a, *b), d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ped_ignores_time() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p1 = Point::new(5.0, 2.0, 1.0);
        let p2 = Point::new(5.0, 2.0, 9.0);
        assert_eq!(ped_point_error(&seg, &p1), ped_point_error(&seg, &p2));
        assert!((ped_point_error(&seg, &p1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ped_unclamped_beyond_endpoint() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        // Beyond the endpoint: perpendicular to the infinite line, not the tip.
        let p = Point::new(15.0, 2.0, 5.0);
        assert!((ped_point_error(&seg, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ped_degenerate_segment_is_point_distance() {
        let seg = Segment::new(Point::new(1.0, 1.0, 0.0), Point::new(1.0, 1.0, 10.0));
        let p = Point::new(4.0, 5.0, 5.0);
        assert!((ped_point_error(&seg, &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ped_leq_sed_on_synchronized_line() {
        // PED is the minimum line distance, SED fixes the matched location,
        // so PED ≤ SED always holds for the same segment/point.
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 4.0, 10.0));
        for (x, y, t) in [(3.0, 5.0, 2.0), (7.0, -1.0, 9.0), (5.0, 2.0, 5.0)] {
            let p = Point::new(x, y, t);
            assert!(ped_point_error(&seg, &p) <= super::super::sed_point_error(&seg, &p) + 1e-12);
        }
    }
}
