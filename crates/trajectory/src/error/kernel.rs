//! Monomorphized measure kernels: the sealed [`ErrorMeasure`] trait, its
//! four zero-sized implementations, and the slice-batch range kernels.
//!
//! The [`super::Measure`] enum stays the *configuration* type — it
//! is what gets parsed, serialized, and stored in algorithm structs. The hot
//! path, however, must not re-branch on it per point: every front-end lowers
//! the enum to one of the zero-sized types below exactly once per call site
//! (the [`dispatch!`](crate::dispatch) hoist) and then runs a fully
//! monomorphized loop. The numeric results are bit-identical to the
//! historical enum-dispatch loops — same operations in the same order — only
//! the per-point branch and per-point call overhead are gone.
//!
//! Three kernel tiers are exposed per measure:
//!
//! * **point** — [`ErrorMeasure::point_error`], error of one anchored unit;
//! * **drop** — [`ErrorMeasure::drop_error`], the online three-point kernel
//!   `ε(ab | d)` (paper Eq. (1));
//! * **range** — [`range_error_stats`] and friends, the batch Eq. (12)
//!   sweep over every unit anchored to a segment `(s, e)`.
//!
//! # Example
//!
//! ```
//! use trajectory::error::{range_error_stats, segment_error, Measure, Sed};
//! use trajectory::Point;
//!
//! let pts: Vec<Point> = (0..6)
//!     .map(|i| Point::new(i as f64, if i == 3 { 2.0 } else { 0.0 }, i as f64))
//!     .collect();
//! // Statically-known measure: call the monomorphized kernel directly.
//! let stats = range_error_stats::<Sed>(&pts, 0, 5);
//! // Runtime measure: the enum front-end lowers to the same kernel.
//! assert_eq!(stats.max, segment_error(Measure::Sed, &pts, 0, 5));
//! assert_eq!(stats.count, 4);
//! ```

use super::{dad_point_error, ped_point_error, sad_point_error, sed_point_error, Measure};
use crate::point::Point;
use crate::segment::Segment;

mod sealed {
    /// Seals [`ErrorMeasure`](super::ErrorMeasure): the four paper measures
    /// are the whole universe; downstream crates select among them, they do
    /// not add new ones.
    pub trait Sealed {}
    impl Sealed for super::Sed {}
    impl Sealed for super::Ped {}
    impl Sealed for super::Dad {}
    impl Sealed for super::Sad {}
}

/// A compile-time error measure: the monomorphized counterpart of
/// [`Measure`].
///
/// Implemented only by the four zero-sized types [`Sed`], [`Ped`], [`Dad`],
/// [`Sad`] (the trait is sealed). Generic code written against this trait
/// compiles to four branch-free specializations; runtime [`Measure`] values
/// enter via the [`dispatch!`](crate::dispatch) hoist.
///
/// # Example
///
/// ```
/// use trajectory::error::{ErrorMeasure, Sed, Dad};
/// use trajectory::Point;
///
/// let a = Point::new(0.0, 0.0, 0.0);
/// let d = Point::new(1.0, 1.0, 1.0);
/// let b = Point::new(2.0, 0.0, 2.0);
/// // The three-point online kernel, statically dispatched:
/// assert!(Sed::drop_error(&a, &d, &b) > 0.0);
/// // DAD/SAD anchor movement segments rather than positions:
/// assert!(Dad::SEGMENT_BASED && !Sed::SEGMENT_BASED);
/// ```
pub trait ErrorMeasure:
    sealed::Sealed + Copy + Clone + std::fmt::Debug + Default + Send + Sync + 'static
{
    /// The runtime configuration value this kernel type lowers from.
    const MEASURE: Measure;

    /// Whether the anchored unit is a *movement segment* `p_i → p_{i+1}`
    /// (DAD/SAD) rather than a single position `p_i` (SED/PED). Determines
    /// the index range a range kernel sweeps: `s..e` versus `s+1..e`
    /// (DESIGN.md §7).
    const SEGMENT_BASED: bool;

    /// Error of the anchor segment `seg` w.r.t. the unit `(p, q)`: SED/PED
    /// read only the position `p`, DAD/SAD the movement `p → q`.
    fn pair_error(seg: &Segment, p: &Point, q: &Point) -> f64;

    /// Error of the anchor segment w.r.t. the unit at original index `i`
    /// (`pts[i]` for SED/PED, `pts[i] → pts[i+1]` for DAD/SAD).
    #[inline]
    fn point_error(seg: &Segment, pts: &[Point], i: usize) -> f64 {
        if Self::SEGMENT_BASED {
            Self::pair_error(seg, &pts[i], &pts[i + 1])
        } else {
            Self::pair_error(seg, &pts[i], &pts[i])
        }
    }

    /// The online three-point kernel `ε(ab | d)` (paper Eq. (1)): the error
    /// introduced by dropping `d` when only its buffer neighbours `a` and
    /// `b` survive. For DAD/SAD both destroyed movement segments `ad` and
    /// `db` are scored against `ab` and the worse one counts (§IV-A1).
    #[inline]
    fn drop_error(a: &Point, d: &Point, b: &Point) -> f64 {
        let seg = Segment::new(*a, *b);
        if Self::SEGMENT_BASED {
            Self::pair_error(&seg, a, d).max(Self::pair_error(&seg, d, b))
        } else {
            Self::pair_error(&seg, d, d)
        }
    }
}

/// Synchronized Euclidean Distance as a zero-sized kernel type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sed;

/// Perpendicular Euclidean Distance as a zero-sized kernel type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ped;

/// Direction-Aware Distance as a zero-sized kernel type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dad;

/// Speed-Aware Distance as a zero-sized kernel type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sad;

impl ErrorMeasure for Sed {
    const MEASURE: Measure = Measure::Sed;
    const SEGMENT_BASED: bool = false;

    #[inline]
    fn pair_error(seg: &Segment, p: &Point, _q: &Point) -> f64 {
        sed_point_error(seg, p)
    }
}

impl ErrorMeasure for Ped {
    const MEASURE: Measure = Measure::Ped;
    const SEGMENT_BASED: bool = false;

    #[inline]
    fn pair_error(seg: &Segment, p: &Point, _q: &Point) -> f64 {
        ped_point_error(seg, p)
    }
}

impl ErrorMeasure for Dad {
    const MEASURE: Measure = Measure::Dad;
    const SEGMENT_BASED: bool = true;

    #[inline]
    fn pair_error(seg: &Segment, p: &Point, q: &Point) -> f64 {
        dad_point_error(seg, p, q)
    }
}

impl ErrorMeasure for Sad {
    const MEASURE: Measure = Measure::Sad;
    const SEGMENT_BASED: bool = true;

    #[inline]
    fn pair_error(seg: &Segment, p: &Point, q: &Point) -> f64 {
        sad_point_error(seg, p, q)
    }
}

/// Lowers a runtime [`Measure`](crate::error::Measure) to its zero-sized
/// [`ErrorMeasure`](crate::error::ErrorMeasure) type exactly once, binding
/// the type to `$M` inside `$body`.
///
/// This is the **dispatch-hoist rule** of DESIGN.md §11: branch on the enum
/// once per call site, *outside* any loop, and let everything downstream
/// monomorphize. Never match on `Measure` inside a per-point loop.
///
/// # Example
///
/// ```
/// use trajectory::error::{range_error_stats, Measure};
/// use trajectory::{dispatch, Point};
///
/// let pts: Vec<Point> = (0..5)
///     .map(|i| Point::new(i as f64, (i % 2) as f64, i as f64))
///     .collect();
/// let measure = Measure::Ped; // e.g. parsed from a config file
/// let max = dispatch!(measure, M => range_error_stats::<M>(&pts, 0, 4).max);
/// assert!(max > 0.0);
/// ```
#[macro_export]
macro_rules! dispatch {
    ($measure:expr, $M:ident => $body:expr) => {
        match $measure {
            $crate::error::Measure::Sed => {
                type $M = $crate::error::Sed;
                $body
            }
            $crate::error::Measure::Ped => {
                type $M = $crate::error::Ped;
                $body
            }
            $crate::error::Measure::Dad => {
                type $M = $crate::error::Dad;
                $body
            }
            $crate::error::Measure::Sad => {
                type $M = $crate::error::Sad;
                $body
            }
        }
    };
}

/// Aggregate error statistics of one anchor range: the Eq. (12) maximum plus
/// the ingredients of mean aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RangeStats {
    /// Maximum per-unit error over the range.
    pub max: f64,
    /// Sum of per-unit errors over the range.
    pub sum: f64,
    /// Number of contributing units.
    pub count: usize,
}

impl RangeStats {
    /// Mean per-unit error (`0.0` for an empty range).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds another range's statistics into this one (order-sensitive:
    /// `sum` accumulates left to right, exactly like the historical
    /// per-window loop).
    pub fn absorb(&mut self, other: RangeStats) {
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The inclusive index of the first anchored unit of range `(s, e)` under
/// measure `M`: `s` for movement-segment measures, `s + 1` for positional
/// ones.
#[inline]
fn range_lo<M: ErrorMeasure>(s: usize) -> usize {
    if M::SEGMENT_BASED {
        s
    } else {
        s + 1
    }
}

/// The batch range kernel (paper Eq. (12)), monomorphized: max, sum, and
/// count of per-unit errors of anchor segment `(s, e)` over every original
/// unit anchored to it.
///
/// This is the innermost loop of the whole codebase — `ErrorBook`, the batch
/// baselines, and the RL reward all reduce to it.
///
/// # Panics
/// Panics if `s >= e` or `e >= pts.len()`.
///
/// # Example
///
/// ```
/// use trajectory::error::{range_error_stats, Ped};
/// use trajectory::Point;
///
/// let pts: Vec<Point> = (0..4)
///     .map(|i| Point::new(i as f64, if i == 2 { 3.0 } else { 0.0 }, i as f64))
///     .collect();
/// let stats = range_error_stats::<Ped>(&pts, 0, 3);
/// assert_eq!(stats.max, 3.0);
/// assert_eq!(stats.count, 2);
/// ```
pub fn range_error_stats<M: ErrorMeasure>(pts: &[Point], s: usize, e: usize) -> RangeStats {
    assert!(
        s < e && e < pts.len(),
        "invalid segment range ({s}, {e}) for {} points",
        pts.len()
    );
    let seg = Segment::new(pts[s], pts[e]);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for i in range_lo::<M>(s)..e {
        let err = M::point_error(&seg, pts, i);
        max = max.max(err);
        sum += err;
        count += 1;
    }
    RangeStats { max, sum, count }
}

/// Maximum error of anchor range `(s, e)` (the Eq. (12) value alone).
///
/// # Panics
/// Panics if `s >= e` or `e >= pts.len()`.
#[inline]
pub fn range_max_error<M: ErrorMeasure>(pts: &[Point], s: usize, e: usize) -> f64 {
    range_error_stats::<M>(pts, s, e).max
}

/// Worst anchored unit of range `(s, e)`: the maximum error together with a
/// split index strictly inside `(s, e)` (the Douglas–Peucker split rule).
/// Returns `None` when the range has no interior. Ties keep the earliest
/// unit, matching the historical Top-Down/Split scan order.
///
/// # Panics
/// Panics if `e >= pts.len()`.
pub fn range_worst<M: ErrorMeasure>(pts: &[Point], s: usize, e: usize) -> Option<(f64, usize)> {
    if e <= s + 1 {
        return None;
    }
    assert!(e < pts.len(), "range end {e} out of bounds");
    let seg = Segment::new(pts[s], pts[e]);
    let mut best: Option<(f64, usize)> = None;
    if M::SEGMENT_BASED {
        for i in s..e {
            let err = M::point_error(&seg, pts, i);
            if best.is_none_or(|(b, _)| err > b) {
                // Split strictly inside (s, e): use i when possible, else
                // its successor, clamped away from e.
                let split = if i > s { i } else { i + 1 }.min(e - 1);
                best = Some((err, split));
            }
        }
    } else {
        for i in (s + 1)..e {
            let err = M::point_error(&seg, pts, i);
            if best.is_none_or(|(b, _)| err > b) {
                best = Some((err, i));
            }
        }
    }
    best
}

/// Whether every unit anchored to range `(s, e)` has error at most `bound`
/// (early-exits on the first violation).
///
/// # Panics
/// Panics if `s >= e` or `e >= pts.len()`.
pub fn range_within<M: ErrorMeasure>(pts: &[Point], s: usize, e: usize, bound: f64) -> bool {
    assert!(
        s < e && e < pts.len(),
        "invalid segment range ({s}, {e}) for {} points",
        pts.len()
    );
    let seg = Segment::new(pts[s], pts[e]);
    (range_lo::<M>(s)..e).all(|i| M::point_error(&seg, pts, i) <= bound)
}

/// Writes the per-unit errors of anchor range `(s, e)` into `out[i]` for
/// each anchored unit index `i` (the [`ErrorProfile`](super::ErrorProfile)
/// inner loop). `out` is indexed by *original* point index.
///
/// # Panics
/// Panics if `s >= e`, `e >= pts.len()`, or `out` is shorter than `pts`.
pub fn fill_range_errors<M: ErrorMeasure>(pts: &[Point], s: usize, e: usize, out: &mut [f64]) {
    assert!(
        s < e && e < pts.len(),
        "invalid segment range ({s}, {e}) for {} points",
        pts.len()
    );
    assert!(out.len() >= pts.len(), "output slice too short");
    let seg = Segment::new(pts[s], pts[e]);
    for (i, slot) in out.iter_mut().enumerate().take(e).skip(range_lo::<M>(s)) {
        *slot = M::point_error(&seg, pts, i);
    }
}

/// Error of a whole simplification under measure `M` — the monomorphized
/// engine behind [`simplification_error`](super::simplification_error),
/// with the same kept-index contract.
///
/// # Panics
/// Panics if `kept` is not strictly increasing from `0` to `pts.len() - 1`.
pub fn trajectory_error<M: ErrorMeasure>(
    pts: &[Point],
    kept: &[usize],
    agg: super::Aggregation,
) -> f64 {
    assert!(pts.len() >= 2, "need at least two points");
    assert!(kept.len() >= 2, "need at least two kept indices");
    assert_eq!(kept[0], 0, "first point must be kept");
    assert_eq!(
        *kept.last().unwrap(),
        pts.len() - 1,
        "last point must be kept"
    );
    let mut stats = RangeStats::default();
    for w in kept.windows(2) {
        assert!(w[0] < w[1], "kept indices must be strictly increasing");
        if w[1] - w[0] <= 1 && !M::SEGMENT_BASED {
            continue; // adjacent points introduce no positional error
        }
        stats.absorb(range_error_stats::<M>(pts, w[0], w[1]));
    }
    match agg {
        super::Aggregation::Max => stats.max,
        super::Aggregation::Mean => stats.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{drop_error, point_error, segment_error_stats, Aggregation};

    /// Deterministic xorshift-based pseudo-random trajectory, so the
    /// equivalence sweeps below run without external crates.
    fn lcg_points(seed: u64, n: usize) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                t += 0.25 + next() * 2.0;
                // Occasional duplicated position / timestamp to hit the
                // degenerate kernel branches.
                let (x, y) = if i % 7 == 3 {
                    (0.0, 0.0)
                } else {
                    (next() * 20.0 - 10.0, next() * 20.0 - 10.0)
                };
                let t = if i % 11 == 5 { t - 0.25 } else { t };
                Point::new(x, y, t)
            })
            .collect()
    }

    /// The historical enum-dispatch range loop, kept verbatim as the
    /// reference the monomorphized kernels must match bit for bit.
    fn reference_stats(measure: Measure, pts: &[Point], s: usize, e: usize) -> (f64, f64, usize) {
        let seg = Segment::new(pts[s], pts[e]);
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        match measure {
            Measure::Sed | Measure::Ped => {
                for p in &pts[s + 1..e] {
                    let err = match measure {
                        Measure::Sed => sed_point_error(&seg, p),
                        _ => ped_point_error(&seg, p),
                    };
                    max = max.max(err);
                    sum += err;
                    count += 1;
                }
            }
            Measure::Dad | Measure::Sad => {
                for i in s..e {
                    let err = match measure {
                        Measure::Dad => dad_point_error(&seg, &pts[i], &pts[i + 1]),
                        _ => sad_point_error(&seg, &pts[i], &pts[i + 1]),
                    };
                    max = max.max(err);
                    sum += err;
                    count += 1;
                }
            }
        }
        (max, sum, count)
    }

    fn reference_drop(measure: Measure, a: &Point, d: &Point, b: &Point) -> f64 {
        match measure {
            Measure::Sed => crate::error::sed_drop_error(a, d, b),
            Measure::Ped => crate::error::ped_drop_error(a, d, b),
            Measure::Dad => crate::error::dad_drop_error(a, d, b),
            Measure::Sad => crate::error::sad_drop_error(a, d, b),
        }
    }

    #[test]
    fn range_kernels_bit_identical_to_enum_reference() {
        for seed in 1..30u64 {
            let pts = lcg_points(seed, 40);
            for m in Measure::ALL {
                for (s, e) in [(0, 39), (0, 1), (3, 17), (12, 13), (20, 39)] {
                    let (rm, rs, rc) = reference_stats(m, &pts, s, e);
                    let stats = crate::dispatch!(m, M => range_error_stats::<M>(&pts, s, e));
                    assert_eq!(rm.to_bits(), stats.max.to_bits(), "{m} max ({s},{e})");
                    assert_eq!(rs.to_bits(), stats.sum.to_bits(), "{m} sum ({s},{e})");
                    assert_eq!(rc, stats.count, "{m} count ({s},{e})");
                    // The enum front-end must route through the same kernel.
                    let (fm, fs, fc) = segment_error_stats(m, &pts, s, e);
                    assert_eq!(fm.to_bits(), stats.max.to_bits(), "{m} front max");
                    assert_eq!(fs.to_bits(), stats.sum.to_bits(), "{m} front sum");
                    assert_eq!(fc, stats.count, "{m} front count");
                }
            }
        }
    }

    #[test]
    fn point_and_drop_kernels_bit_identical_to_enum_reference() {
        for seed in 1..30u64 {
            let pts = lcg_points(seed, 12);
            let seg = Segment::new(pts[0], pts[11]);
            for m in Measure::ALL {
                for i in 1..11 {
                    let reference = point_error(m, &seg, &pts, i);
                    let mono = crate::dispatch!(m, M => M::point_error(&seg, &pts, i));
                    assert_eq!(reference.to_bits(), mono.to_bits(), "{m} point {i}");
                }
                for i in 1..10 {
                    let reference = reference_drop(m, &pts[i - 1], &pts[i], &pts[i + 1]);
                    let front = drop_error(m, &pts[i - 1], &pts[i], &pts[i + 1]);
                    let mono =
                        crate::dispatch!(m, M => M::drop_error(&pts[i - 1], &pts[i], &pts[i + 1]));
                    assert_eq!(reference.to_bits(), mono.to_bits(), "{m} drop {i}");
                    assert_eq!(reference.to_bits(), front.to_bits(), "{m} drop front {i}");
                }
            }
        }
    }

    #[test]
    fn trajectory_error_matches_windowed_reference() {
        for seed in 1..20u64 {
            let pts = lcg_points(seed, 30);
            let kept = vec![0, 1, 4, 11, 12, 20, 29];
            for m in Measure::ALL {
                for agg in [Aggregation::Max, Aggregation::Mean] {
                    // Reference: per-window enum loops with the historical
                    // adjacent-pair skip.
                    let mut max = 0.0f64;
                    let mut sum = 0.0f64;
                    let mut count = 0usize;
                    for w in kept.windows(2) {
                        if w[1] - w[0] <= 1 && matches!(m, Measure::Sed | Measure::Ped) {
                            continue;
                        }
                        let (wm, ws, wc) = reference_stats(m, &pts, w[0], w[1]);
                        max = max.max(wm);
                        sum += ws;
                        count += wc;
                    }
                    let reference = match agg {
                        Aggregation::Max => max,
                        Aggregation::Mean => {
                            if count == 0 {
                                0.0
                            } else {
                                sum / count as f64
                            }
                        }
                    };
                    let mono = crate::dispatch!(m, M => trajectory_error::<M>(&pts, &kept, agg));
                    assert_eq!(reference.to_bits(), mono.to_bits(), "{m} {agg:?}");
                }
            }
        }
    }

    #[test]
    fn range_worst_picks_first_argmax() {
        let pts: Vec<Point> = (0..8)
            .map(|i| Point::new(i as f64, if i == 3 || i == 5 { 4.0 } else { 0.0 }, i as f64))
            .collect();
        let (err, split) = range_worst::<Ped>(&pts, 0, 7).unwrap();
        assert_eq!(err, 4.0);
        assert_eq!(split, 3, "ties keep the earliest unit");
        assert_eq!(range_worst::<Ped>(&pts, 2, 3), None, "no interior");
    }

    #[test]
    fn range_worst_split_stays_interior_for_segment_measures() {
        let pts: Vec<Point> = (0..6)
            .map(|i| Point::new(i as f64, if i % 2 == 0 { 0.0 } else { 1.5 }, i as f64))
            .collect();
        for (s, e) in [(0, 5), (0, 2), (3, 5), (1, 4)] {
            for (err, split) in [
                range_worst::<Dad>(&pts, s, e),
                range_worst::<Sad>(&pts, s, e),
            ]
            .into_iter()
            .flatten()
            {
                assert!(split > s && split < e, "split {split} outside ({s},{e})");
                assert!(err >= 0.0);
            }
        }
    }

    #[test]
    fn range_within_agrees_with_max() {
        for seed in 1..10u64 {
            let pts = lcg_points(seed, 25);
            for m in Measure::ALL {
                let stats = crate::dispatch!(m, M => range_error_stats::<M>(&pts, 2, 20));
                crate::dispatch!(m, M => {
                    assert!(range_within::<M>(&pts, 2, 20, stats.max));
                    if stats.max > 0.0 {
                        assert!(!range_within::<M>(&pts, 2, 20, stats.max * 0.5 - 1e-12));
                    }
                });
            }
        }
    }

    #[test]
    fn fill_range_errors_matches_point_kernel() {
        let pts = lcg_points(9, 15);
        for m in Measure::ALL {
            let mut out = vec![0.0; pts.len()];
            let seg = Segment::new(pts[2], pts[10]);
            crate::dispatch!(m, M => {
                fill_range_errors::<M>(&pts, 2, 10, &mut out);
                let lo = if M::SEGMENT_BASED { 2 } else { 3 };
                for (i, &val) in out.iter().enumerate().take(10).skip(lo) {
                    assert_eq!(val.to_bits(), M::point_error(&seg, &pts, i).to_bits());
                }
            });
        }
    }

    #[test]
    fn measure_constants_round_trip() {
        assert_eq!(Sed::MEASURE, Measure::Sed);
        assert_eq!(Ped::MEASURE, Measure::Ped);
        assert_eq!(Dad::MEASURE, Measure::Dad);
        assert_eq!(Sad::MEASURE, Measure::Sad);
        for m in Measure::ALL {
            assert_eq!(crate::dispatch!(m, M => M::MEASURE), m);
            assert_eq!(
                crate::dispatch!(m, M => M::SEGMENT_BASED),
                m.segment_based()
            );
        }
    }

    #[test]
    fn range_stats_absorb_is_left_fold() {
        let a = RangeStats {
            max: 1.0,
            sum: 2.0,
            count: 2,
        };
        let mut acc = RangeStats::default();
        acc.absorb(a);
        acc.absorb(RangeStats {
            max: 0.5,
            sum: 1.0,
            count: 1,
        });
        assert_eq!(acc.max, 1.0);
        assert_eq!(acc.sum, 3.0);
        assert_eq!(acc.count, 3);
        assert!((acc.mean() - 1.0).abs() < 1e-15);
        assert_eq!(RangeStats::default().mean(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::error::{point_error, segment_error_stats, simplification_error, Aggregation};
    use proptest::prelude::*;

    prop_compose! {
        /// Random finite trajectory with strictly increasing time except for
        /// occasional duplicate timestamps (degenerate kernel branches).
        fn traj(max_len: usize)
            (n in 4..max_len)
            (coords in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64, 0.01..2.0f64, prop::bool::ANY), n))
            -> Vec<Point>
        {
            let mut t = 0.0;
            coords
                .into_iter()
                .map(|(x, y, dt, dup)| {
                    if !dup {
                        t += dt;
                    }
                    Point::new(x, y, t)
                })
                .collect()
        }
    }

    /// The historical per-point enum loop (pre-monomorphization), verbatim.
    fn enum_reference(measure: Measure, pts: &[Point], s: usize, e: usize) -> (f64, f64, usize) {
        let seg = Segment::new(pts[s], pts[e]);
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        match measure {
            Measure::Sed | Measure::Ped => {
                for p in &pts[s + 1..e] {
                    let err = match measure {
                        Measure::Sed => sed_point_error(&seg, p),
                        _ => ped_point_error(&seg, p),
                    };
                    max = max.max(err);
                    sum += err;
                    count += 1;
                }
            }
            Measure::Dad | Measure::Sad => {
                for i in s..e {
                    let err = match measure {
                        Measure::Dad => dad_point_error(&seg, &pts[i], &pts[i + 1]),
                        _ => sad_point_error(&seg, &pts[i], &pts[i + 1]),
                    };
                    max = max.max(err);
                    sum += err;
                    count += 1;
                }
            }
        }
        (max, sum, count)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn range_kernel_bit_identical_to_enum_dispatch(
            pts in traj(60),
            s_frac in 0.0..1.0f64,
            e_frac in 0.0..1.0f64,
        ) {
            let n = pts.len();
            let s = ((s_frac * (n - 2) as f64) as usize).min(n - 2);
            let e = s + 1 + ((e_frac * (n - 1 - s) as f64) as usize).min(n - 2 - s);
            for m in Measure::ALL {
                let (rm, rs, rc) = enum_reference(m, &pts, s, e);
                let stats = crate::dispatch!(m, M => range_error_stats::<M>(&pts, s, e));
                prop_assert_eq!(rm.to_bits(), stats.max.to_bits(), "{} max", m);
                prop_assert_eq!(rs.to_bits(), stats.sum.to_bits(), "{} sum", m);
                prop_assert_eq!(rc, stats.count, "{} count", m);
                let (fm, fs, fc) = segment_error_stats(m, &pts, s, e);
                prop_assert_eq!(fm.to_bits(), stats.max.to_bits());
                prop_assert_eq!(fs.to_bits(), stats.sum.to_bits());
                prop_assert_eq!(fc, stats.count);
            }
        }

        #[test]
        fn point_and_drop_kernels_bit_identical(pts in traj(30)) {
            let n = pts.len();
            let seg = Segment::new(pts[0], pts[n - 1]);
            for m in Measure::ALL {
                for i in 1..n - 1 {
                    let enum_point = point_error(m, &seg, &pts, i);
                    let mono_point = crate::dispatch!(m, M => M::point_error(&seg, &pts, i));
                    prop_assert_eq!(enum_point.to_bits(), mono_point.to_bits(), "{} point {}", m, i);

                    let enum_drop = crate::error::drop_error(m, &pts[i - 1], &pts[i], &pts[i + 1]);
                    let mono_drop =
                        crate::dispatch!(m, M => M::drop_error(&pts[i - 1], &pts[i], &pts[i + 1]));
                    prop_assert_eq!(enum_drop.to_bits(), mono_drop.to_bits(), "{} drop {}", m, i);
                }
            }
        }

        #[test]
        fn simplification_error_bit_stable_under_view_path(
            pts in traj(50),
            keep_mask in prop::collection::vec(prop::bool::ANY, 50),
        ) {
            let n = pts.len();
            let mut kept = vec![0];
            kept.extend((1..n - 1).filter(|&i| keep_mask[i % keep_mask.len()]));
            kept.push(n - 1);
            for m in Measure::ALL {
                for agg in [Aggregation::Max, Aggregation::Mean] {
                    // Reference: fold the enum-dispatch per-window loops.
                    let mut max = 0.0f64;
                    let mut sum = 0.0f64;
                    let mut count = 0usize;
                    for w in kept.windows(2) {
                        if w[1] - w[0] <= 1 && matches!(m, Measure::Sed | Measure::Ped) {
                            continue;
                        }
                        let (wm, ws, wc) = enum_reference(m, &pts, w[0], w[1]);
                        max = max.max(wm);
                        sum += ws;
                        count += wc;
                    }
                    let reference = match agg {
                        Aggregation::Max => max,
                        Aggregation::Mean => if count == 0 { 0.0 } else { sum / count as f64 },
                    };
                    let through_front = simplification_error(m, &pts, &kept, agg);
                    prop_assert_eq!(reference.to_bits(), through_front.to_bits(), "{} {:?}", m, agg);
                }
            }
        }
    }
}
