//! Synchronized Euclidean Distance (SED).
//!
//! The error of an anchor segment w.r.t. an anchored point `p` is the
//! Euclidean distance between `p`'s location and the position reached on the
//! segment at `p`'s timestamp, assuming constant-speed travel between the
//! segment's endpoint timestamps.

use crate::point::Point;
use crate::segment::Segment;

/// SED error of anchor segment `seg` w.r.t. point `p`.
#[inline]
pub fn sed_point_error(seg: &Segment, p: &Point) -> f64 {
    let (sx, sy) = seg.position_at(p.t);
    (p.x - sx).hypot(p.y - sy)
}

/// Online three-point SED kernel: error introduced by dropping `d` between
/// `a` and `b` (the synchronized distance of `d` against segment `ab`).
#[inline]
pub fn sed_drop_error(a: &Point, d: &Point, b: &Point) -> f64 {
    sed_point_error(&Segment::new(*a, *b), d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sed_uses_time_not_geometry() {
        // Point is ON the segment spatially, but out of sync temporally.
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 0.0, 10.0));
        let p = Point::new(5.0, 0.0, 2.0); // segment is at x=2 when t=2
        assert!((sed_point_error(&seg, &p) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sed_zero_when_synchronized() {
        let seg = Segment::new(Point::new(0.0, 0.0, 0.0), Point::new(10.0, 10.0, 10.0));
        let p = Point::new(3.0, 3.0, 3.0);
        assert!(sed_point_error(&seg, &p) < 1e-12);
    }

    #[test]
    fn sed_degenerate_time_span() {
        // Zero-duration anchor segment: synchronized position is the start.
        let seg = Segment::new(Point::new(0.0, 0.0, 5.0), Point::new(10.0, 0.0, 5.0));
        let p = Point::new(4.0, 3.0, 5.0);
        assert!((sed_point_error(&seg, &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn drop_kernel_matches_point_kernel() {
        let a = Point::new(0.0, 0.0, 0.0);
        let d = Point::new(4.0, 7.0, 3.0);
        let b = Point::new(10.0, 2.0, 10.0);
        let seg = Segment::new(a, b);
        assert_eq!(sed_drop_error(&a, &d, &b), sed_point_error(&seg, &d));
    }
}
