//! The generic keyed cache with pluggable eviction.

use crate::stats::StatsPublisher;
use crate::{CacheStats, MemSize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;

const NIL: u32 = u32::MAX;

/// Flat per-entry overhead charged on top of [`MemSize`] estimates: hash
/// map slot, slab bookkeeping, and the duplicated key (the index map and
/// the eviction slab each own a copy).
const ENTRY_OVERHEAD: usize = 64;

/// Default TTL (in logical clock units) for `"tlru"` parsed without an
/// explicit `:<ttl>` suffix.
pub const DEFAULT_TLRU_TTL: u64 = 256;

/// How a full cache chooses victims.
///
/// All policies respect the same entry and byte bounds; they differ only in
/// *which* resident entry goes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Least-recently-used: one recency list, evict from the cold end.
    Lru,
    /// Time-aware LRU: LRU order plus a per-entry time-to-live in logical
    /// clock units (see [`Cache::advance_to`]); expired entries are dropped
    /// on access and count as evictions.
    Tlru {
        /// Lifetime of an entry, in logical clock units, from its insert.
        ttl: u64,
    },
    /// Simplified adaptive replacement (ARC): a recency list T1 and a
    /// frequency list T2, with ghost lists of recently evicted key
    /// fingerprints steering the adaptive split between them. Re-inserting
    /// a key that B1 remembers grows the recency side; one that B2
    /// remembers grows the frequency side.
    Arc,
}

/// Error returned when parsing an [`EvictPolicy`] from a CLI string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError(String);

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown cache policy {:?} (expected lru, tlru[:<ttl>], or arc)",
            self.0
        )
    }
}

impl std::error::Error for PolicyParseError {}

impl FromStr for EvictPolicy {
    type Err = PolicyParseError;

    /// Parses `"lru"`, `"arc"`, `"tlru"` (TTL [`DEFAULT_TLRU_TTL`]), or
    /// `"tlru:<ttl>"`.
    ///
    /// ```
    /// use trajcache::EvictPolicy;
    /// assert_eq!("tlru:50".parse(), Ok(EvictPolicy::Tlru { ttl: 50 }));
    /// assert_eq!("arc".parse(), Ok(EvictPolicy::Arc));
    /// assert!("mru".parse::<EvictPolicy>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(EvictPolicy::Lru),
            "arc" => Ok(EvictPolicy::Arc),
            "tlru" => Ok(EvictPolicy::Tlru {
                ttl: DEFAULT_TLRU_TTL,
            }),
            other => match other.strip_prefix("tlru:").and_then(|t| t.parse().ok()) {
                Some(ttl) => Ok(EvictPolicy::Tlru { ttl }),
                None => Err(PolicyParseError(other.to_string())),
            },
        }
    }
}

impl fmt::Display for EvictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictPolicy::Lru => f.write_str("lru"),
            EvictPolicy::Tlru { ttl } => write!(f, "tlru:{ttl}"),
            EvictPolicy::Arc => f.write_str("arc"),
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    bytes: usize,
    prev: u32,
    next: u32,
    /// Logical instant at which the entry expires (`u64::MAX` = never).
    expires: u64,
    /// Which recency list holds the slot (0 = LRU/T1, 1 = ARC T2).
    list: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct ListHeads {
    head: u32,
    tail: u32,
    len: usize,
}

/// A bounded FIFO of evicted-key fingerprints (an ARC ghost list).
#[derive(Debug, Clone, Default)]
struct Ghost {
    order: VecDeque<u64>,
    members: HashMap<u64, u32>,
}

impl Ghost {
    fn push(&mut self, fp: u64, cap: usize) {
        self.order.push_back(fp);
        *self.members.entry(fp).or_insert(0) += 1;
        while self.order.len() > cap {
            let old = self.order.pop_front().expect("non-empty ghost");
            match self.members.get_mut(&old) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.members.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, fp: u64) -> bool {
        match self.members.get_mut(&fp) {
            Some(c) => {
                if *c > 1 {
                    *c -= 1;
                } else {
                    self.members.remove(&fp);
                }
                if let Some(pos) = self.order.iter().rposition(|&x| x == fp) {
                    self.order.remove(pos);
                }
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// A bounded keyed cache with pluggable eviction and approximate byte
/// accounting. See the [crate docs](crate) for the caching contract.
///
/// Lookups compare full keys with `Eq` — fingerprints and hashes only ever
/// steer *efficiency* (ARC adaptation), never correctness.
///
/// ```
/// use trajcache::{Cache, EvictPolicy};
///
/// // A TLRU cache over a logical clock: entries live 10 clock units.
/// let mut c: Cache<(u64, u32), Vec<f64>> =
///     Cache::new(EvictPolicy::Tlru { ttl: 10 }, 128, 64 * 1024);
/// c.insert((7, 0), vec![1.0, 2.0]);
/// assert!(c.get(&(7, 0)).is_some());
/// c.advance_to(10); // entry inserted at t=0 is now expired
/// assert!(c.get(&(7, 0)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Cache<K, V> {
    policy: EvictPolicy,
    max_entries: usize,
    max_bytes: usize,
    map: HashMap<K, u32>,
    slab: Vec<Option<Slot<K, V>>>,
    free: Vec<u32>,
    lists: [ListHeads; 2],
    ghosts: [Ghost; 2],
    /// ARC adaptation target: how many entries the recency side T1 should
    /// hold before eviction prefers it.
    p: usize,
    now: u64,
    bytes: usize,
    stats: CacheStats,
    publisher: Option<StatsPublisher>,
}

impl<K, V> Cache<K, V>
where
    K: std::hash::Hash + Eq + Clone + MemSize,
    V: Clone + MemSize,
{
    /// Creates a cache bounded by `max_entries` entries *and* `max_bytes`
    /// approximate resident bytes; eviction runs while either bound is
    /// exceeded.
    pub fn new(policy: EvictPolicy, max_entries: usize, max_bytes: usize) -> Self {
        Cache {
            policy,
            max_entries,
            max_bytes,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lists: [ListHeads::default(); 2],
            ghosts: [Ghost::default(), Ghost::default()],
            p: 0,
            now: 0,
            bytes: 0,
            stats: CacheStats::default(),
            publisher: None,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes (keys + values + per-entry overhead).
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// A snapshot of the cache's statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.resident_bytes = self.bytes as u64;
        s.resident_entries = self.map.len() as u64;
        s
    }

    /// Advances the logical clock (monotonic; earlier instants are ignored).
    /// TTLs under [`EvictPolicy::Tlru`] are measured against this clock —
    /// never wall time — so expiry is reproducible run to run.
    pub fn advance_to(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Looks a key up, returning a clone of the cached value on a hit.
    /// Updates recency (and, for TLRU, drops the entry instead if its TTL
    /// has lapsed).
    pub fn get(&mut self, key: &K) -> Option<V> {
        let Some(&idx) = self.map.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        let expired = self.slot(idx).expires <= self.now;
        if expired {
            self.remove_entry(idx);
            self.stats.evictions += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.touch(idx);
        Some(self.slot(idx).value.clone())
    }

    /// Inserts (or overwrites) an entry, then evicts until both bounds
    /// hold. Under [`EvictPolicy::Arc`], a key remembered by a ghost list
    /// adapts the recency/frequency split before insertion.
    pub fn insert(&mut self, key: K, value: V) {
        self.stats.inserts += 1;
        let entry_bytes = key.approx_bytes() * 2 + value.approx_bytes() + ENTRY_OVERHEAD;
        let expires = match self.policy {
            EvictPolicy::Tlru { ttl } => self.now.saturating_add(ttl),
            _ => u64::MAX,
        };
        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slab[idx as usize].as_mut().expect("mapped slot live");
            self.bytes = self.bytes - slot.bytes + entry_bytes;
            slot.value = value;
            slot.bytes = entry_bytes;
            slot.expires = expires;
            self.touch(idx);
            self.enforce_bounds();
            return;
        }
        let list = match self.policy {
            EvictPolicy::Arc => {
                let fp = self.key_fingerprint(&key);
                if self.ghosts[0].remove(fp) {
                    let delta = (self.ghosts[1].len() / self.ghosts[0].len().max(1)).max(1);
                    self.p = (self.p + delta).min(self.adapt_capacity());
                    1
                } else if self.ghosts[1].remove(fp) {
                    let delta = (self.ghosts[0].len() / self.ghosts[1].len().max(1)).max(1);
                    self.p = self.p.saturating_sub(delta);
                    1
                } else {
                    0
                }
            }
            _ => 0,
        };
        let slot = Slot {
            key: key.clone(),
            value,
            bytes: entry_bytes,
            prev: NIL,
            next: NIL,
            expires,
            list,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(slot);
                i
            }
            None => {
                self.slab.push(Some(slot));
                (self.slab.len() - 1) as u32
            }
        };
        self.push_front(list, idx);
        self.map.insert(key, idx);
        self.bytes += entry_bytes;
        self.enforce_bounds();
    }

    /// Returns the cached value for `key`, computing and caching it via
    /// `compute` on a miss.
    ///
    /// ```
    /// use trajcache::{Cache, EvictPolicy};
    /// let mut c: Cache<u32, u64> = Cache::new(EvictPolicy::Lru, 8, 4096);
    /// let v = c.get_or_insert_with(&3, || 9);
    /// assert_eq!(v, 9);
    /// assert_eq!(c.get_or_insert_with(&3, || unreachable!()), 9);
    /// ```
    pub fn get_or_insert_with(&mut self, key: &K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key.clone(), v.clone());
        v
    }

    /// Drops every entry (ghost lists and the adaptation target included).
    /// Lookup/eviction counters keep accumulating across the clear.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.lists = [ListHeads::default(); 2];
        self.ghosts = [Ghost::default(), Ghost::default()];
        self.p = 0;
        self.bytes = 0;
    }

    /// Publishes this cache's stats into the `cache.*` obskit family,
    /// labelled `cache=<name>`. Delta-based: safe to call every tick. The
    /// name passed on the first call binds the instrument handles.
    pub fn publish(&mut self, name: &str) {
        let stats = self.stats();
        self.publisher
            .get_or_insert_with(|| StatsPublisher::new(name))
            .publish(&stats);
    }

    fn slot(&self, idx: u32) -> &Slot<K, V> {
        self.slab[idx as usize].as_ref().expect("slot live")
    }

    fn key_fingerprint(&self, key: &K) -> u64 {
        use std::hash::{BuildHasher, RandomState};
        use std::sync::OnceLock;
        // One process-wide seed so a key keeps the same fingerprint across
        // caches; determinism is irrelevant here (fingerprints only steer
        // ARC adaptation).
        static STATE: OnceLock<RandomState> = OnceLock::new();
        STATE.get_or_init(RandomState::new).hash_one(key)
    }

    /// The entry capacity ARC adapts against.
    fn adapt_capacity(&self) -> usize {
        if self.max_entries == usize::MAX {
            (self.map.len() * 2).clamp(16, 65_536)
        } else {
            self.max_entries
        }
    }

    fn touch(&mut self, idx: u32) {
        let target = match self.policy {
            // A hit under ARC promotes the entry to the frequency list.
            EvictPolicy::Arc => 1,
            _ => 0,
        };
        self.detach(idx);
        if let Some(slot) = self.slab[idx as usize].as_mut() {
            slot.list = target;
        }
        self.push_front(target, idx);
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next, list) = {
            let s = self.slot(idx);
            (s.prev, s.next, s.list as usize)
        };
        if prev != NIL {
            self.slab[prev as usize].as_mut().expect("live").next = next;
        } else {
            self.lists[list].head = next;
        }
        if next != NIL {
            self.slab[next as usize].as_mut().expect("live").prev = prev;
        } else {
            self.lists[list].tail = prev;
        }
        self.lists[list].len -= 1;
        if self.lists[list].len == 0 {
            self.lists[list].head = NIL;
            self.lists[list].tail = NIL;
        }
    }

    fn push_front(&mut self, list: u8, idx: u32) {
        let l = list as usize;
        let old_head = if self.lists[l].len == 0 {
            NIL
        } else {
            self.lists[l].head
        };
        {
            let s = self.slab[idx as usize].as_mut().expect("live");
            s.prev = NIL;
            s.next = old_head;
            s.list = list;
        }
        if old_head != NIL {
            self.slab[old_head as usize].as_mut().expect("live").prev = idx;
        } else {
            self.lists[l].tail = idx;
        }
        self.lists[l].head = idx;
        self.lists[l].len += 1;
    }

    /// Unlinks an entry and frees its slot (no eviction accounting).
    fn remove_entry(&mut self, idx: u32) {
        self.detach(idx);
        let slot = self.slab[idx as usize].take().expect("slot live");
        self.bytes -= slot.bytes;
        self.map.remove(&slot.key);
        self.free.push(idx);
    }

    fn enforce_bounds(&mut self) {
        while self.map.len() > self.max_entries || self.bytes > self.max_bytes {
            if !self.evict_one() {
                break;
            }
        }
    }

    /// Evicts one entry per the policy. Returns `false` if nothing is left.
    fn evict_one(&mut self) -> bool {
        let victim = match self.policy {
            EvictPolicy::Lru | EvictPolicy::Tlru { .. } => self.lists[0].tail,
            EvictPolicy::Arc => {
                // Prefer the recency side while it exceeds its adaptive
                // target `p`; fall back to whichever list is non-empty.
                let prefer_t1 = self.lists[0].len > self.p.min(self.adapt_capacity());
                if prefer_t1 && self.lists[0].tail != NIL {
                    self.lists[0].tail
                } else if self.lists[1].tail != NIL {
                    self.lists[1].tail
                } else {
                    self.lists[0].tail
                }
            }
        };
        if victim == NIL {
            return false;
        }
        if self.policy == EvictPolicy::Arc {
            let (fp, list) = {
                let s = self.slot(victim);
                (self.key_fingerprint(&s.key), s.list as usize)
            };
            let cap = self.adapt_capacity();
            self.ghosts[list].push(fp, cap);
        }
        self.remove_entry(victim);
        self.stats.evictions += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(cap: usize) -> Cache<u64, u64> {
        Cache::new(EvictPolicy::Lru, cap, usize::MAX)
    }

    #[test]
    fn lru_respects_capacity_and_order() {
        let mut c = lru(3);
        for k in 0..3 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.get(&0), Some(0)); // refresh 0
        c.insert(3, 30); // evicts 1 (coldest)
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&0), Some(0));
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_byte_bound_evicts() {
        // Each (u64, u64) entry costs 2*8 + 8 + 64 = 88 bytes.
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Lru, usize::MAX, 200);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 2, "two entries fit in 200 bytes");
        c.insert(3, 3);
        assert_eq!(c.len(), 2, "third entry must push one out");
        assert_eq!(c.get(&1), None, "the coldest entry went first");
        assert!(c.resident_bytes() <= 200);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut c = lru(4);
        c.insert(5, 50);
        c.insert(5, 55);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&5), Some(55));
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn tlru_expires_on_logical_clock() {
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Tlru { ttl: 5 }, 16, usize::MAX);
        c.insert(1, 10);
        c.advance_to(4);
        assert_eq!(c.get(&1), Some(10), "alive one unit before the TTL");
        c.advance_to(5);
        assert_eq!(c.get(&1), None, "expired exactly at insert + ttl");
        assert_eq!(c.stats().evictions, 1);
        // Re-insert restarts the clock from now.
        c.insert(1, 11);
        c.advance_to(9);
        assert_eq!(c.get(&1), Some(11));
        c.advance_to(10);
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn tlru_clock_is_monotonic() {
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Tlru { ttl: 3 }, 16, usize::MAX);
        c.advance_to(10);
        c.advance_to(2); // ignored: the clock never rewinds
        c.insert(1, 1);
        c.advance_to(12);
        assert_eq!(c.get(&1), Some(1));
    }

    #[test]
    fn arc_promotes_repeated_keys_over_scan() {
        // A small frequent working set must survive a long one-shot scan —
        // the pattern plain LRU fails.
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Arc, 8, usize::MAX);
        for round in 0..4 {
            for k in 0..4 {
                if round == 0 {
                    c.insert(k, k);
                } else {
                    assert!(c.get(&k).is_some() || round == 1, "warm key {k} lost");
                    c.insert(k, k);
                }
            }
        }
        // Scan 100 cold keys through the cache.
        for k in 100..200 {
            c.insert(k, k);
        }
        let survivors = (0..4).filter(|k| c.get(k).is_some()).count();
        assert!(
            survivors >= 2,
            "frequency list must shield the hot set from the scan ({survivors}/4 survived)"
        );
    }

    #[test]
    fn arc_ghost_hit_adapts_target() {
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Arc, 4, usize::MAX);
        // Fill T1, force evictions into the B1 ghost.
        for k in 0..8 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 4);
        let p_before = c.p;
        // Re-inserting a ghosted key signals "recency side too small".
        c.insert(0, 0);
        assert!(
            c.p >= p_before,
            "B1 ghost hit must not shrink p ({} -> {})",
            p_before,
            c.p
        );
        assert!(c.p > 0, "ghost hit must grow the adaptation target");
    }

    #[test]
    fn arc_capacity_still_bounds() {
        let mut c: Cache<u64, u64> = Cache::new(EvictPolicy::Arc, 4, usize::MAX);
        for k in 0..100 {
            c.insert(k, k);
            // Touch half the keys to populate T2 as well.
            if k % 2 == 0 {
                c.get(&k);
            }
        }
        assert!(c.len() <= 4);
        assert!(c.stats().evictions >= 96);
    }

    #[test]
    fn get_or_insert_with_computes_once() {
        let mut c = lru(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = c.get_or_insert_with(&9, || {
                calls += 1;
                81
            });
            assert_eq!(v, 81);
        }
        assert_eq!(calls, 1);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = lru(4);
        c.insert(1, 1);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(2));
    }

    #[test]
    fn publish_exports_cache_family() {
        let mut c = lru(4);
        c.insert(1, 1);
        c.get(&1);
        c.get(&2);
        c.publish("unit-test");
        c.publish("unit-test"); // delta publish must not double-count
        let snap = obskit::global().snapshot();
        let labels = [("cache", "unit-test")];
        let hit = snap.get(&obskit::MetricId::with_labels("cache.lookup.hit", &labels));
        match hit.map(|s| &s.value) {
            Some(obskit::Value::Counter(v)) => assert_eq!(*v, 1),
            other => panic!("cache.lookup.hit missing: {other:?}"),
        }
        let miss = snap.get(&obskit::MetricId::with_labels("cache.lookup.miss", &labels));
        match miss.map(|s| &s.value) {
            Some(obskit::Value::Counter(v)) => assert_eq!(*v, 1),
            other => panic!("cache.lookup.miss missing: {other:?}"),
        }
    }

    #[test]
    fn policy_roundtrips_through_display_and_parse() {
        for p in [
            EvictPolicy::Lru,
            EvictPolicy::Tlru { ttl: 17 },
            EvictPolicy::Arc,
        ] {
            assert_eq!(p.to_string().parse(), Ok(p));
        }
    }

    #[test]
    fn vec_keys_and_values_account_bytes() {
        let mut c: Cache<Vec<u64>, Vec<f64>> = Cache::new(EvictPolicy::Lru, 8, usize::MAX);
        c.insert(vec![1, 2, 3], vec![0.5; 10]);
        let expect = (std::mem::size_of::<Vec<u64>>() + 24) * 2
            + std::mem::size_of::<Vec<f64>>()
            + 80
            + ENTRY_OVERHEAD;
        assert_eq!(c.resident_bytes(), expect);
        assert_eq!(c.get(&vec![1, 2, 3]), Some(vec![0.5; 10]));
    }
}
