//! Per-cache statistics and their `cache.*` telemetry export.

use obskit::{Counter, Gauge};
use std::sync::Arc;

/// Counters and gauges for one cache, kept as plain fields so the lookup
/// hot path never touches an atomic. [`crate::Cache::publish`] pushes the
/// deltas since the previous publish into the `cache.*` obskit family.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live (non-expired) entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries removed to satisfy the entry/byte bounds or a TTL expiry.
    pub evictions: u64,
    /// Entries written (including overwrites of an existing key).
    pub inserts: u64,
    /// Approximate bytes currently resident (keys + values + overhead).
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

impl CacheStats {
    /// Hit fraction `hits / (hits + misses)`; `0.0` before any lookup.
    ///
    /// ```
    /// use trajcache::{Cache, EvictPolicy};
    /// let mut c: Cache<u32, u32> = Cache::new(EvictPolicy::Lru, 8, 1 << 12);
    /// c.insert(1, 10);
    /// c.get(&1);
    /// c.get(&2);
    /// assert_eq!(c.stats().hit_rate(), 0.5);
    /// ```
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another stats block into this one (gauge-like fields add too:
    /// aggregate resident figures across a set of caches).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.inserts += other.inserts;
        self.resident_bytes += other.resident_bytes;
        self.resident_entries += other.resident_entries;
    }
}

/// Resolved `cache.*` instrument handles for one named cache, plus the
/// counter values already published (publishing is delta-based so repeated
/// publishes never double-count).
///
/// [`crate::Cache::publish`] uses one internally; hold a `StatsPublisher`
/// directly to export an *aggregate* over several caches under one name
/// (e.g. a service summing per-shard caches into one `cache.*` row):
///
/// ```
/// use trajcache::{Cache, CacheStats, EvictPolicy, StatsPublisher};
/// let mut a: Cache<u32, u32> = Cache::new(EvictPolicy::Lru, 8, 1 << 12);
/// let mut b: Cache<u32, u32> = Cache::new(EvictPolicy::Lru, 8, 1 << 12);
/// a.insert(1, 10);
/// b.get(&1);
/// let mut total = CacheStats::default();
/// total.absorb(&a.stats());
/// total.absorb(&b.stats());
/// StatsPublisher::new("doc-aggregate").publish(&total);
/// ```
#[derive(Debug, Clone)]
pub struct StatsPublisher {
    hit: Arc<Counter>,
    miss: Arc<Counter>,
    evicted: Arc<Counter>,
    bytes: Arc<Gauge>,
    entries: Arc<Gauge>,
    last: CacheStats,
}

impl StatsPublisher {
    /// Resolves the `cache.*` instruments for the cache named `name` (the
    /// value of the `cache` label on every exported row).
    pub fn new(name: &str) -> Self {
        let labels = [("cache", name)];
        let reg = obskit::global();
        StatsPublisher {
            hit: reg.counter_with("cache.lookup.hit", &labels),
            miss: reg.counter_with("cache.lookup.miss", &labels),
            evicted: reg.counter_with("cache.entries.evicted", &labels),
            bytes: reg.gauge_with("cache.bytes.resident", &labels),
            entries: reg.gauge_with("cache.entries.resident", &labels),
            last: CacheStats::default(),
        }
    }

    /// Pushes the counter deltas since the previous publish and the current
    /// resident gauges. Counter fields are expected to be monotone between
    /// calls; a regression (e.g. an aggregate that dropped a retired cache)
    /// publishes a zero delta rather than double-counting or panicking.
    pub fn publish(&mut self, stats: &CacheStats) {
        self.hit.add(stats.hits.saturating_sub(self.last.hits));
        self.miss.add(stats.misses.saturating_sub(self.last.misses));
        self.evicted
            .add(stats.evictions.saturating_sub(self.last.evictions));
        self.bytes.set(stats.resident_bytes as f64);
        self.entries.set(stats.resident_entries as f64);
        self.last = *stats;
    }
}
