//! Keyed memoization caches for the RLTS hot paths.
//!
//! The workspace recomputes three families of pure functions over and over:
//! segment error statistics for heavily overlapping anchor ranges
//! (`trajectory::ErrorBook`), policy-network forward passes for repeated
//! state patterns (`rlkit`), and whole window simplifications for sessions
//! streaming the same routes (`trajserve`). This crate provides the one
//! mechanism all three share: a generic keyed [`Cache`] with pluggable
//! eviction ([`EvictPolicy`]), approximate per-entry memory accounting
//! ([`MemSize`]), entry/byte bounds, and a per-cache stats block
//! ([`CacheStats`]) that [`Cache::publish`] exports through `obskit` as the
//! `cache.*` metric family (DESIGN.md §14).
//!
//! # The caching contract
//!
//! Every value stored here must be a **pure function of its key contents**:
//! a hit returns bit-for-bit what a recompute would have produced, so
//! enabling a cache can never change an output — only how fast it arrives.
//! Keys therefore embed everything the computation depends on (exact
//! `f64::to_bits` patterns, config fingerprints, generation counters), and
//! owners invalidate by *changing the key* (bumping a generation), never by
//! mutating values in place.
//!
//! Time is **logical**: TTLs count caller-driven clock units fed through
//! [`Cache::advance_to`], never wall time, so cache behaviour is
//! reproducible run to run.
//!
//! # Example
//!
//! ```
//! use trajcache::{Cache, EvictPolicy};
//!
//! let mut c: Cache<u64, f64> = Cache::new(EvictPolicy::Lru, 2, 1 << 16);
//! c.insert(1, 1.5);
//! c.insert(2, 2.5);
//! assert_eq!(c.get(&1), Some(1.5)); // 1 is now most-recently used
//! c.insert(3, 3.5);                 // evicts 2, the LRU entry
//! assert_eq!(c.get(&2), None);
//! assert_eq!(c.stats().hits, 1);
//! assert_eq!(c.stats().evictions, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod stats;

pub use cache::{Cache, EvictPolicy, PolicyParseError, DEFAULT_TLRU_TTL};
pub use stats::{CacheStats, StatsPublisher};

/// Approximate heap + inline footprint of a value, in bytes.
///
/// The estimate feeds the cache's byte bound and the `cache.bytes.resident`
/// gauge. It is deliberately cheap and approximate: fixed-size values report
/// `size_of::<Self>()`, containers add their element footprints. Allocator
/// slack and hash-table overhead are covered by a flat per-entry constant
/// inside [`Cache`], not here.
///
/// ```
/// use trajcache::MemSize;
///
/// assert_eq!(3.5f64.approx_bytes(), 8);
/// let v = vec![1u64, 2, 3];
/// assert_eq!(v.approx_bytes(), std::mem::size_of::<Vec<u64>>() + 24);
/// ```
pub trait MemSize {
    /// Approximate number of bytes this value keeps resident.
    fn approx_bytes(&self) -> usize;
}

macro_rules! memsize_fixed {
    ($($t:ty),* $(,)?) => {$(
        impl MemSize for $t {
            fn approx_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
        }
    )*};
}

memsize_fixed!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: MemSize> MemSize for Vec<T> {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.iter().map(MemSize::approx_bytes).sum::<usize>()
    }
}

impl<T: MemSize, const N: usize> MemSize for [T; N] {
    fn approx_bytes(&self) -> usize {
        self.iter().map(MemSize::approx_bytes).sum()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.as_ref().map_or(0, |v| v.approx_bytes())
    }
}

impl MemSize for String {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.len()
    }
}

impl<A: MemSize, B: MemSize> MemSize for (A, B) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize> MemSize for (A, B, C) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize, D: MemSize> MemSize for (A, B, C, D) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
            + self.1.approx_bytes()
            + self.2.approx_bytes()
            + self.3.approx_bytes()
    }
}

/// FNV-1a over a byte slice: the zero-dependency fingerprint used for cache
/// tokens (algorithm identities, ARC ghost keys).
///
/// Not cryptographic — collisions only cost cache efficiency, never
/// correctness, because [`Cache`] always compares full keys with `Eq`.
///
/// ```
/// assert_ne!(trajcache::fnv1a(b"sed"), trajcache::fnv1a(b"ped"));
/// assert_eq!(trajcache::fnv1a(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mixes two 64-bit fingerprints into one (splitmix64 finalizer over the
/// xored pair) — for composing cache tokens out of parts.
///
/// ```
/// let t = trajcache::mix64(trajcache::fnv1a(b"squish"), 3);
/// assert_ne!(t, trajcache::mix64(trajcache::fnv1a(b"squish"), 4));
/// ```
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fingerprints a float slice by its exact IEEE-754 bit patterns.
///
/// Bitwise-exact on purpose: this is the "quantizer" for state-keyed caches,
/// and anything coarser than the identity mapping would let a hit return a
/// value computed from a *different* state, breaking the byte-identical
/// cache-on/cache-off contract (DESIGN.md §14).
///
/// ```
/// let a = trajcache::fingerprint_f64s(&[0.1, 0.2]);
/// let b = trajcache::fingerprint_f64s(&[0.1, 0.2000000001]);
/// assert_ne!(a, b);
/// ```
pub fn fingerprint_f64s(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memsize_covers_compound_shapes() {
        assert_eq!((1u32, 2u64).approx_bytes(), 12);
        assert_eq!([1.0f64; 4].approx_bytes(), 32);
        assert_eq!(Option::<u64>::None.approx_bytes(), 16);
        let s = String::from("abc");
        assert_eq!(s.approx_bytes(), std::mem::size_of::<String>() + 3);
        let nested: Vec<Vec<u8>> = vec![vec![0; 10]];
        assert_eq!(
            nested.approx_bytes(),
            2 * std::mem::size_of::<Vec<u8>>() + 10
        );
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fnv1a(b"rlts"), fnv1a(b"rlts"));
        assert_ne!(fingerprint_f64s(&[1.0]), fingerprint_f64s(&[-1.0]));
        assert_ne!(fingerprint_f64s(&[0.0]), fingerprint_f64s(&[-0.0]));
        assert_eq!(mix64(7, 9), mix64(7, 9));
        assert_ne!(mix64(7, 9), mix64(9, 7));
    }
}
