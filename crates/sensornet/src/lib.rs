//! `sensornet` — the paper's motivating online scenario (§I), made
//! measurable: remote sensors with small buffers collect fixes, simplify
//! them online, and periodically uplink their buffers over a constrained
//! link to a server that reassembles and stores the fleet's trajectories.
//!
//! The simulation answers the questions the paper's introduction raises
//! quantitatively: how many bytes does a given buffer size + simplifier
//! combination push over the network, and what fidelity does the server
//! end up with?
//!
//! * [`Sensor`] — one device: feeds fixes through an
//!   [`OnlineSimplifier`](trajectory::OnlineSimplifier) window, emits
//!   framed [`Packet`]s on flush, and keeps a bounded retransmission queue
//!   for NACK-driven recovery;
//! * [`LossyChannel`] — seeded fault injection between sensor and server:
//!   drops, duplicates, bounded reordering, payload bit-flips;
//! * [`Server`] — reassembles packets into per-sensor trajectories,
//!   tolerating duplicates, reordering, gaps, and corruption (see
//!   [`LinkStats`] for the per-fault accounting and the quarantine rules
//!   in the [`server`](Server) docs);
//! * [`FleetSim`] — drives many sensors from ground-truth trajectories in
//!   global timestamp order, optionally through a lossy channel, and
//!   reports fidelity vs. ground truth (including loss-rate sweeps).
//!
//! # Example
//!
//! ```
//! use sensornet::{FleetSim, SensorConfig};
//! use baselines::Squish;
//! use trajectory::error::Measure;
//! use trajectory::Trajectory;
//!
//! let truth = vec![Trajectory::from_xyt(
//!     &(0..50).map(|i| (i as f64, 0.0, i as f64)).collect::<Vec<_>>(),
//! ).unwrap()];
//! let cfg = SensorConfig { buffer: 8, flush_points: 8, ..Default::default() };
//! let report = FleetSim::new(cfg)
//!     .run(&truth, |m| Box::new(Squish::new(m)), Measure::Sed);
//! assert!(report.uplink_bytes < report.raw_bytes);
//! ```

#![warn(missing_docs)]

mod channel;
mod fleet;
mod sensor;
mod server;

pub use channel::{ChannelConfig, ChannelStats, LossyChannel};
pub use fleet::{FleetReport, FleetSim};
pub use sensor::{Packet, Sensor, SensorConfig};
pub use server::{IngestOutcome, IngestReport, LinkStats, Server};
