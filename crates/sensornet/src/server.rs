//! The collecting server: decodes framed packets, reassembles per-sensor
//! streams out of possibly lossy uplink traffic, tracks link statistics,
//! and hands reassembled data to a [`trajstore::TrajStore`] on demand.
//!
//! Robustness model (framed v2 payloads):
//!
//! * **duplicates** — a sequence number seen before is ignored;
//! * **reordering** — out-of-order packets are buffered per sequence
//!   number and re-stitched in order on demand, never rejected;
//! * **gaps** — a jump in sequence numbers registers the missing numbers
//!   and NACKs each a bounded number of times so the sensor can
//!   retransmit from its bounded queue;
//! * **corruption** — payloads failing the frame CRC (or any decode
//!   validation) are counted and, after repeated consecutive strikes, the
//!   stream is quarantined: its data is withheld from queries instead of
//!   poisoning them.
//!
//! Unframed (v1) payloads keep the legacy append-only semantics: packets
//! whose first timestamp precedes the stream's last are rejected.

use crate::sensor::Packet;
use obskit::{Buckets, Counter, Gauge, Histogram, Span};
use std::collections::BTreeMap;
use std::sync::Arc;
use trajectory::codec::Codec;
use trajectory::io::IoError;
use trajectory::{Point, Trajectory};
use trajstore::{StoreConfig, TrajStore};

/// How many times the server NACKs one missing sequence number before
/// giving it up as lost.
const MAX_NACKS: u32 = 3;

/// Consecutive corrupt payloads from one sensor before its stream is
/// quarantined (override with [`Server::with_quarantine_threshold`]).
const DEFAULT_QUARANTINE_THRESHOLD: u32 = 3;

/// Uplink accounting, including every fault class observed on the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted (decoded and stored).
    pub packets: usize,
    /// Total payload bytes accepted.
    pub bytes: usize,
    /// Total simplified points accepted.
    pub points: usize,
    /// Packets whose sequence number had already been received.
    pub duplicated: usize,
    /// Packets that arrived with a sequence number below the stream's
    /// highest (delivered late).
    pub reordered: usize,
    /// Payloads that failed framing, checksum, or decode validation.
    pub corrupt: usize,
    /// Distinct missing sequence numbers ever detected (cumulative).
    pub gaps: usize,
    /// Missing sequence numbers still outstanding (presumed dropped).
    pub dropped: usize,
    /// Streams currently quarantined after repeated corruption.
    pub quarantined: usize,
}

/// What the server did with one well-formed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Decoded and stored.
    Accepted,
    /// Sequence number seen before; ignored.
    Duplicate,
    /// The stream is quarantined; ignored.
    Quarantined,
}

/// The server's reply to one ingested packet.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// What happened to the packet.
    pub outcome: IngestOutcome,
    /// Missing sequence numbers of this packet's stream the server wants
    /// retransmitted (each NACKed a bounded number of times).
    pub nack: Vec<u32>,
}

/// Per-sensor reassembly state.
#[derive(Debug, Default)]
struct Stream {
    /// Framed (v2) segments keyed by sequence number.
    segments: BTreeMap<u32, Vec<Point>>,
    /// Legacy (v1) packets, concatenated in arrival order.
    legacy: Vec<Point>,
    /// Highest sequence number seen so far (framed packets only).
    max_seq: Option<u32>,
    /// Missing sequence numbers → how many times each was NACKed.
    missing: BTreeMap<u32, u32>,
    /// Consecutive corrupt payloads; reset by any clean decode.
    corrupt_strikes: u32,
    quarantined: bool,
}

impl Stream {
    fn has_data(&self) -> bool {
        !self.segments.is_empty() || !self.legacy.is_empty()
    }

    /// Stitches legacy points and framed segments (in sequence order) into
    /// one monotone point list, dropping any point that would move time
    /// backwards — graceful degradation instead of a hard error when
    /// segments overlap after loss and recovery.
    fn stitched(&self) -> Vec<Point> {
        let mut pts: Vec<Point> = Vec::with_capacity(
            self.legacy.len() + self.segments.values().map(|s| s.len()).sum::<usize>(),
        );
        pts.extend(self.legacy.iter().copied());
        for seg in self.segments.values() {
            for p in seg {
                if pts.last().is_none_or(|l| p.t >= l.t) {
                    pts.push(*p);
                }
            }
        }
        pts
    }
}

/// The server's handles into [`obskit::global()`] — the registry-backed
/// mirror of [`LinkStats`] (`sensornet.*`, DESIGN.md §9). The ad-hoc
/// struct remains the per-server view; these instruments aggregate across
/// every server in the process.
struct ServerMetrics {
    accepted: Arc<Counter>,
    duplicate: Arc<Counter>,
    reordered: Arc<Counter>,
    corrupt: Arc<Counter>,
    bytes: Arc<Counter>,
    points: Arc<Counter>,
    gaps: Arc<Counter>,
    nacks: Arc<Counter>,
    quarantined: Arc<Gauge>,
    restitch: Arc<Histogram>,
}

impl ServerMetrics {
    fn register() -> ServerMetrics {
        let reg = obskit::global();
        ServerMetrics {
            accepted: reg.counter("sensornet.packets.accepted"),
            duplicate: reg.counter("sensornet.packets.duplicate"),
            reordered: reg.counter("sensornet.packets.reordered"),
            corrupt: reg.counter("sensornet.packets.corrupt"),
            bytes: reg.counter("sensornet.bytes.accepted"),
            points: reg.counter("sensornet.points.accepted"),
            gaps: reg.counter("sensornet.gaps.detected"),
            nacks: reg.counter("sensornet.nacks.sent"),
            quarantined: reg.gauge("sensornet.streams.quarantined"),
            restitch: reg.histogram("sensornet.restitch.seconds", Buckets::latency()),
        }
    }
}

/// The server side of the uplink.
///
/// # Example
///
/// ```
/// use sensornet::{Sensor, SensorConfig, Server};
/// use baselines::Squish;
/// use trajectory::codec::Codec;
/// use trajectory::error::Measure;
/// use trajectory::Point;
///
/// let cfg = SensorConfig { buffer: 4, flush_points: 4, ..Default::default() };
/// let mut sensor = Sensor::new(7, cfg, Box::new(Squish::new(Measure::Sed)));
/// let mut server = Server::new(Codec::new(0.01, 0.01));
///
/// for i in 0..16 {
///     let fix = Point::new(i as f64, 0.0, i as f64);
///     if let Some(pkt) = sensor.observe(fix) {
///         server.ingest(&pkt).unwrap();
///     }
/// }
/// if let Some(pkt) = sensor.force_flush() {
///     server.ingest(&pkt).unwrap();
/// }
///
/// assert_eq!(server.sensor_ids(), vec![7]);
/// let traj = server.trajectory(7).expect("reassembled stream");
/// assert!(traj.len() >= 2);
/// ```
pub struct Server {
    codec: Codec,
    streams: BTreeMap<u32, Stream>,
    stats: LinkStats,
    quarantine_threshold: u32,
    metrics: ServerMetrics,
}

impl Server {
    /// Creates a server decoding with any codec (payloads carry their own
    /// resolutions; the argument only sets defaults for future use).
    pub fn new(codec: Codec) -> Self {
        Server {
            codec,
            streams: BTreeMap::new(),
            stats: LinkStats::default(),
            quarantine_threshold: DEFAULT_QUARANTINE_THRESHOLD,
            metrics: ServerMetrics::register(),
        }
    }

    /// Overrides the number of consecutive corrupt payloads that
    /// quarantines a stream.
    ///
    /// # Panics
    /// Panics if `strikes` is zero.
    pub fn with_quarantine_threshold(mut self, strikes: u32) -> Self {
        assert!(strikes >= 1, "quarantine threshold must be at least 1");
        self.quarantine_threshold = strikes;
        self
    }

    /// Ingests one packet.
    ///
    /// Framed (v2) payloads are deduplicated, buffered out-of-order, and
    /// trigger NACKs for detected gaps; see the module docs. Legacy (v1)
    /// payloads keep append-only semantics and are rejected with an error
    /// when they move time backwards. Corrupt payloads return an error,
    /// count against the stream, and eventually quarantine it — they never
    /// disturb previously stored data.
    pub fn ingest(&mut self, pkt: &Packet) -> Result<IngestReport, IoError> {
        let decoded = match self.codec.decode_framed(pkt.payload.clone()) {
            Ok(d) => d,
            Err(e) => {
                self.stats.corrupt += 1;
                self.metrics.corrupt.inc();
                let threshold = self.quarantine_threshold;
                let stream = self.streams.entry(pkt.sensor_id).or_default();
                if !stream.quarantined {
                    stream.corrupt_strikes += 1;
                    if stream.corrupt_strikes >= threshold {
                        stream.quarantined = true;
                        self.metrics.quarantined.add(1.0);
                    }
                }
                return Err(e);
            }
        };
        let (traj, meta) = decoded;
        let stream = self.streams.entry(pkt.sensor_id).or_default();
        if stream.quarantined {
            return Ok(IngestReport {
                outcome: IngestOutcome::Quarantined,
                nack: Vec::new(),
            });
        }
        stream.corrupt_strikes = 0;
        let Some(meta) = meta else {
            // Legacy v1 payload: append-only, reject time regressions.
            if let (Some(last), Some(first)) = (stream.legacy.last(), traj.first()) {
                if first.t < last.t {
                    return Err(IoError::Malformed("out-of-order packet"));
                }
            }
            self.stats.packets += 1;
            self.stats.bytes += pkt.payload.len();
            self.stats.points += traj.len();
            self.metrics.accepted.inc();
            self.metrics.bytes.add(pkt.payload.len() as u64);
            self.metrics.points.add(traj.len() as u64);
            stream.legacy.extend(traj.iter().copied());
            return Ok(IngestReport {
                outcome: IngestOutcome::Accepted,
                nack: Vec::new(),
            });
        };
        let seq = meta.seq;
        if stream.segments.contains_key(&seq) {
            self.stats.duplicated += 1;
            self.metrics.duplicate.inc();
            return Ok(IngestReport {
                outcome: IngestOutcome::Duplicate,
                nack: Vec::new(),
            });
        }
        if stream.max_seq.is_some_and(|m| seq < m) {
            self.stats.reordered += 1;
            self.metrics.reordered.inc();
        }
        // Register gaps that this packet makes visible.
        let horizon = stream.max_seq.map_or(0, |m| m.saturating_add(1));
        for gap in horizon..seq {
            if !stream.segments.contains_key(&gap) && !stream.missing.contains_key(&gap) {
                stream.missing.insert(gap, 0);
                self.stats.gaps += 1;
                self.metrics.gaps.inc();
            }
        }
        stream.missing.remove(&seq);
        stream.max_seq = Some(stream.max_seq.map_or(seq, |m| m.max(seq)));
        self.stats.packets += 1;
        self.stats.bytes += pkt.payload.len();
        self.stats.points += traj.len();
        self.metrics.accepted.inc();
        self.metrics.bytes.add(pkt.payload.len() as u64);
        self.metrics.points.add(traj.len() as u64);
        stream.segments.insert(seq, traj.points().to_vec());
        // Ask for the stream's outstanding holes, a bounded number of
        // times each.
        let mut nack = Vec::new();
        for (&gap, tries) in stream.missing.iter_mut() {
            if *tries < MAX_NACKS {
                *tries += 1;
                nack.push(gap);
            }
        }
        self.metrics.nacks.add(nack.len() as u64);
        Ok(IngestReport {
            outcome: IngestOutcome::Accepted,
            nack,
        })
    }

    /// Link statistics so far. `dropped` and `quarantined` reflect the
    /// current reassembly state; the other counters are cumulative.
    pub fn stats(&self) -> LinkStats {
        let mut s = self.stats;
        s.dropped = self.streams.values().map(|st| st.missing.len()).sum();
        s.quarantined = self.streams.values().filter(|st| st.quarantined).count();
        s
    }

    /// Sensors with at least one reassembled (non-quarantined) packet.
    pub fn sensor_ids(&self) -> Vec<u32> {
        self.streams
            .iter()
            .filter(|(_, s)| !s.quarantined && s.has_data())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Missing sequence numbers per sensor: gaps the server has detected
    /// that have not been filled yet. Useful for a final recovery round.
    pub fn outstanding(&self) -> Vec<(u32, Vec<u32>)> {
        self.streams
            .iter()
            .filter(|(_, s)| !s.quarantined && !s.missing.is_empty())
            .map(|(&id, s)| (id, s.missing.keys().copied().collect()))
            .collect()
    }

    /// The reassembled trajectory of one sensor, if it has usable data.
    /// Quarantined streams return `None`.
    pub fn trajectory(&self, sensor_id: u32) -> Option<Trajectory> {
        let stream = self.streams.get(&sensor_id)?;
        if stream.quarantined {
            return None;
        }
        let span = Span::new(Arc::clone(&self.metrics.restitch));
        let pts = stream.stitched();
        span.finish();
        if pts.is_empty() {
            return None;
        }
        Trajectory::new(pts).ok()
    }

    /// Re-stitched points of one sensor strictly after time `after_t`, in
    /// timestamp order — the incremental variant of
    /// [`Server::trajectory`] used by streaming consumers (the `trajserve`
    /// session layer) that keep a per-stream time watermark and pull only
    /// what is new since their last poll.
    ///
    /// Packets that arrive late (filling a gap *behind* the caller's
    /// watermark) are not re-delivered: a streaming consumer has already
    /// moved past that part of the timeline. Quarantined and unknown
    /// streams return an empty vector.
    pub fn stitched_after(&self, sensor_id: u32, after_t: f64) -> Vec<Point> {
        let Some(stream) = self.streams.get(&sensor_id) else {
            return Vec::new();
        };
        if stream.quarantined {
            return Vec::new();
        }
        let mut pts = stream.stitched();
        pts.retain(|p| p.t > after_t);
        pts
    }

    /// Builds a queryable store of all reassembled trajectories
    /// (insertion order = ascending sensor id). Quarantined and empty
    /// streams are skipped.
    pub fn into_store(self, cfg: StoreConfig) -> TrajStore {
        let mut store = TrajStore::new(cfg);
        for (_, stream) in self.streams {
            if stream.quarantined {
                continue;
            }
            let span = Span::new(Arc::clone(&self.metrics.restitch));
            let pts = stream.stitched();
            span.finish();
            if pts.is_empty() {
                continue;
            }
            if let Ok(traj) = Trajectory::new(pts) {
                store.insert(traj);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(id: u32, xs: &[(f64, f64, f64)]) -> Packet {
        let traj = Trajectory::from_xyt(xs).unwrap();
        let payload = Codec::new(0.01, 0.01).encode(&traj);
        Packet {
            sensor_id: id,
            points: traj.len(),
            payload,
        }
    }

    fn framed(id: u32, seq: u32, xs: &[(f64, f64, f64)]) -> Packet {
        let traj = Trajectory::from_xyt(xs).unwrap();
        let payload = Codec::new(0.01, 0.01).encode_framed(seq, &traj);
        Packet {
            sensor_id: id,
            points: traj.len(),
            payload,
        }
    }

    fn garbage(id: u32) -> Packet {
        Packet {
            sensor_id: id,
            points: 0,
            payload: Bytes::from_static(b"nonsense"),
        }
    }

    #[test]
    fn ingest_reassembles_in_order() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server
            .ingest(&packet(1, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]))
            .unwrap();
        server
            .ingest(&packet(1, &[(2.0, 0.0, 2.0), (3.0, 0.0, 3.0)]))
            .unwrap();
        server
            .ingest(&packet(2, &[(9.0, 9.0, 5.0), (10.0, 9.0, 6.0)]))
            .unwrap();
        assert_eq!(server.sensor_ids(), vec![1, 2]);
        let t1 = server.trajectory(1).unwrap();
        assert_eq!(t1.len(), 4);
        assert!((t1[3].x - 3.0).abs() < 0.01);
        assert_eq!(server.stats().packets, 3);
        assert_eq!(server.stats().points, 6);
        assert!(server.stats().bytes > 0);
    }

    #[test]
    fn rejects_out_of_order_packets() {
        // Legacy v1 payloads keep the append-only contract.
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server
            .ingest(&packet(1, &[(0.0, 0.0, 10.0), (1.0, 0.0, 11.0)]))
            .unwrap();
        let err = server.ingest(&packet(1, &[(5.0, 0.0, 3.0), (6.0, 0.0, 4.0)]));
        assert!(err.is_err());
        // State unchanged.
        assert_eq!(server.trajectory(1).unwrap().len(), 2);
        assert_eq!(server.stats().packets, 1);
    }

    #[test]
    fn equal_boundary_timestamps_are_tolerated() {
        // A packet starting at exactly the stream's last timestamp must
        // neither error nor panic in trajectory()/into_store().
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server
            .ingest(&packet(1, &[(0.0, 0.0, 0.0), (1.0, 0.0, 5.0)]))
            .unwrap();
        server
            .ingest(&packet(1, &[(1.0, 0.0, 5.0), (2.0, 0.0, 9.0)]))
            .unwrap();
        let t = server.trajectory(1).unwrap();
        assert_eq!(t.len(), 4);
        let store = server.into_store(trajstore::StoreConfig { cell_size: 10.0 });
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rejects_garbage_payload() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        assert!(server.ingest(&garbage(3)).is_err());
        assert!(server.trajectory(3).is_none());
        assert_eq!(server.stats().corrupt, 1);
    }

    #[test]
    fn framed_out_of_order_is_buffered_and_restitched() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        let first = framed(1, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]);
        let second = framed(1, 1, &[(2.0, 0.0, 2.0), (3.0, 0.0, 3.0)]);
        let third = framed(1, 2, &[(4.0, 0.0, 4.0), (5.0, 0.0, 5.0)]);
        server.ingest(&first).unwrap();
        // Deliver 2 before 1: accepted, not rejected.
        let rep = server.ingest(&third).unwrap();
        assert_eq!(rep.outcome, IngestOutcome::Accepted);
        assert_eq!(rep.nack, vec![1]);
        let rep = server.ingest(&second).unwrap();
        assert_eq!(rep.outcome, IngestOutcome::Accepted);
        assert!(rep.nack.is_empty());
        let t = server.trajectory(1).unwrap();
        assert_eq!(t.len(), 6);
        // Stitched back into timestamp order.
        for i in 0..6 {
            assert!((t[i].t - i as f64).abs() < 0.01);
        }
        let stats = server.stats();
        assert_eq!(stats.reordered, 1);
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.dropped, 0); // gap was filled
    }

    #[test]
    fn framed_duplicates_are_ignored() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        let pkt = framed(1, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]);
        assert_eq!(
            server.ingest(&pkt).unwrap().outcome,
            IngestOutcome::Accepted
        );
        assert_eq!(
            server.ingest(&pkt).unwrap().outcome,
            IngestOutcome::Duplicate
        );
        assert_eq!(server.trajectory(1).unwrap().len(), 2);
        let stats = server.stats();
        assert_eq!(stats.packets, 1);
        assert_eq!(stats.duplicated, 1);
    }

    #[test]
    fn gaps_are_nacked_a_bounded_number_of_times() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        // seq 0 never arrives; each later packet re-NACKs it up to MAX_NACKS.
        let mut nacks = 0;
        for seq in 1..8u32 {
            let t = seq as f64 * 10.0;
            let pkt = framed(1, seq, &[(t, 0.0, t), (t + 1.0, 0.0, t + 1.0)]);
            let rep = server.ingest(&pkt).unwrap();
            nacks += rep.nack.iter().filter(|&&s| s == 0).count();
        }
        assert_eq!(nacks, MAX_NACKS as usize);
        let stats = server.stats();
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.dropped, 1); // still outstanding
        assert_eq!(server.outstanding(), vec![(1, vec![0])]);
        // The stream is still usable without the lost prefix.
        assert_eq!(server.trajectory(1).unwrap().len(), 14);
    }

    #[test]
    fn repeated_corruption_quarantines_the_stream() {
        let mut server = Server::new(Codec::new(1.0, 1.0)).with_quarantine_threshold(3);
        server
            .ingest(&framed(1, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]))
            .unwrap();
        for _ in 0..3 {
            assert!(server.ingest(&garbage(1)).is_err());
        }
        let stats = server.stats();
        assert_eq!(stats.corrupt, 3);
        assert_eq!(stats.quarantined, 1);
        // Quarantined: data withheld, further packets ignored.
        assert!(server.trajectory(1).is_none());
        assert!(server.sensor_ids().is_empty());
        let rep = server
            .ingest(&framed(1, 1, &[(2.0, 0.0, 2.0), (3.0, 0.0, 3.0)]))
            .unwrap();
        assert_eq!(rep.outcome, IngestOutcome::Quarantined);
        // Other streams are unaffected.
        server
            .ingest(&framed(2, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]))
            .unwrap();
        assert_eq!(server.sensor_ids(), vec![2]);
    }

    #[test]
    fn clean_decodes_reset_the_strike_counter() {
        let mut server = Server::new(Codec::new(1.0, 1.0)).with_quarantine_threshold(2);
        assert!(server.ingest(&garbage(1)).is_err());
        server
            .ingest(&framed(1, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]))
            .unwrap();
        assert!(server.ingest(&garbage(1)).is_err());
        // 1 strike, reset, 1 strike: never reaches 2 consecutive.
        assert_eq!(server.stats().quarantined, 0);
        assert!(server.trajectory(1).is_some());
    }

    #[test]
    fn overlapping_segments_degrade_gracefully() {
        // Two segments overlapping in time (e.g. a replayed window after
        // recovery): stitching drops the regressive points, no panic.
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server
            .ingest(&framed(1, 0, &[(0.0, 0.0, 0.0), (5.0, 0.0, 5.0)]))
            .unwrap();
        server
            .ingest(&framed(1, 1, &[(3.0, 0.0, 3.0), (8.0, 0.0, 8.0)]))
            .unwrap();
        let t = server.trajectory(1).unwrap();
        assert_eq!(t.len(), 3); // the t=3 point is dropped
        assert!((t[2].t - 8.0).abs() < 0.01);
    }

    #[test]
    fn into_store_is_queryable() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server
            .ingest(&packet(5, &[(0.0, 0.0, 0.0), (100.0, 0.0, 50.0)]))
            .unwrap();
        let store = server.into_store(StoreConfig { cell_size: 50.0 });
        assert_eq!(store.len(), 1);
        assert_eq!(store.range_query(40.0, -5.0, 60.0, 5.0, None), vec![0]);
    }

    #[test]
    fn unknown_sensor_returns_none() {
        let server = Server::new(Codec::new(1.0, 1.0));
        assert!(server.trajectory(99).is_none());
        assert!(server.sensor_ids().is_empty());
    }

    #[test]
    fn stitched_after_respects_the_watermark() {
        let mut server = Server::new(Codec::new(0.01, 0.01));
        server
            .ingest(&framed(3, 0, &[(0.0, 0.0, 0.0), (1.0, 0.0, 10.0)]))
            .unwrap();
        // Everything is new to a fresh consumer.
        let all = server.stitched_after(3, f64::NEG_INFINITY);
        assert_eq!(all.len(), 2);
        // Nothing is new past the last timestamp.
        assert!(server.stitched_after(3, all.last().unwrap().t).is_empty());
        // A later packet shows up only beyond the watermark.
        server
            .ingest(&framed(3, 1, &[(2.0, 0.0, 20.0), (3.0, 0.0, 30.0)]))
            .unwrap();
        let fresh = server.stitched_after(3, all.last().unwrap().t);
        assert_eq!(fresh.len(), 2);
        assert!(fresh.iter().all(|p| p.t > all.last().unwrap().t));
        // Unknown streams are empty, not an error.
        assert!(server.stitched_after(42, f64::NEG_INFINITY).is_empty());
    }
}
