//! The collecting server: decodes packets, reassembles per-sensor
//! trajectories, tracks link statistics, and hands reassembled data to a
//! [`trajstore::TrajStore`] on demand.

use crate::sensor::Packet;
use std::collections::BTreeMap;
use trajectory::codec::Codec;
use trajectory::io::IoError;
use trajectory::{Point, Trajectory};
use trajstore::{StoreConfig, TrajStore};

/// Uplink accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets received.
    pub packets: usize,
    /// Total payload bytes received.
    pub bytes: usize,
    /// Total simplified points received.
    pub points: usize,
}

/// The server side of the uplink.
pub struct Server {
    codec: Codec,
    streams: BTreeMap<u32, Vec<Point>>,
    stats: LinkStats,
}

impl Server {
    /// Creates a server decoding with any codec (payloads carry their own
    /// resolutions; the argument only sets defaults for future use).
    pub fn new(codec: Codec) -> Self {
        Server { codec, streams: BTreeMap::new(), stats: LinkStats::default() }
    }

    /// Ingests one packet, appending its points to the sensor's stream.
    ///
    /// Returns an error (and leaves state untouched) for malformed payloads
    /// or out-of-order packets (a packet whose first timestamp precedes the
    /// stream's last known timestamp).
    pub fn ingest(&mut self, pkt: &Packet) -> Result<(), IoError> {
        let decoded = self.codec.decode(pkt.payload.clone())?;
        let stream = self.streams.entry(pkt.sensor_id).or_default();
        if let (Some(last), Some(first)) = (stream.last(), decoded.first()) {
            if first.t < last.t {
                return Err(IoError::Malformed("out-of-order packet"));
            }
        }
        self.stats.packets += 1;
        self.stats.bytes += pkt.payload.len();
        self.stats.points += decoded.len();
        stream.extend(decoded.iter().copied());
        Ok(())
    }

    /// Link statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Sensors with at least one ingested packet.
    pub fn sensor_ids(&self) -> Vec<u32> {
        self.streams.keys().copied().collect()
    }

    /// The reassembled trajectory of one sensor, if any.
    pub fn trajectory(&self, sensor_id: u32) -> Option<Trajectory> {
        self.streams.get(&sensor_id).map(|pts| {
            Trajectory::new(pts.clone()).expect("ingest enforces time order")
        })
    }

    /// Builds a queryable store of all reassembled trajectories
    /// (insertion order = ascending sensor id).
    pub fn into_store(self, cfg: StoreConfig) -> TrajStore {
        let mut store = TrajStore::new(cfg);
        for (_, pts) in self.streams {
            store.insert(Trajectory::new(pts).expect("ingest enforces time order"));
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(id: u32, xs: &[(f64, f64, f64)]) -> Packet {
        let traj = Trajectory::from_xyt(xs).unwrap();
        let payload = Codec::new(0.01, 0.01).encode(&traj);
        Packet { sensor_id: id, points: traj.len(), payload }
    }

    #[test]
    fn ingest_reassembles_in_order() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server.ingest(&packet(1, &[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)])).unwrap();
        server.ingest(&packet(1, &[(2.0, 0.0, 2.0), (3.0, 0.0, 3.0)])).unwrap();
        server.ingest(&packet(2, &[(9.0, 9.0, 5.0), (10.0, 9.0, 6.0)])).unwrap();
        assert_eq!(server.sensor_ids(), vec![1, 2]);
        let t1 = server.trajectory(1).unwrap();
        assert_eq!(t1.len(), 4);
        assert!((t1[3].x - 3.0).abs() < 0.01);
        assert_eq!(server.stats().packets, 3);
        assert_eq!(server.stats().points, 6);
        assert!(server.stats().bytes > 0);
    }

    #[test]
    fn rejects_out_of_order_packets() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server.ingest(&packet(1, &[(0.0, 0.0, 10.0), (1.0, 0.0, 11.0)])).unwrap();
        let err = server.ingest(&packet(1, &[(5.0, 0.0, 3.0), (6.0, 0.0, 4.0)]));
        assert!(err.is_err());
        // State unchanged.
        assert_eq!(server.trajectory(1).unwrap().len(), 2);
        assert_eq!(server.stats().packets, 1);
    }

    #[test]
    fn rejects_garbage_payload() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        let bad = Packet { sensor_id: 3, points: 0, payload: Bytes::from_static(b"nonsense") };
        assert!(server.ingest(&bad).is_err());
        assert!(server.trajectory(3).is_none());
    }

    #[test]
    fn into_store_is_queryable() {
        let mut server = Server::new(Codec::new(1.0, 1.0));
        server.ingest(&packet(5, &[(0.0, 0.0, 0.0), (100.0, 0.0, 50.0)])).unwrap();
        let store = server.into_store(StoreConfig { cell_size: 50.0 });
        assert_eq!(store.len(), 1);
        assert_eq!(store.range_query(40.0, -5.0, 60.0, 5.0, None), vec![0]);
    }

    #[test]
    fn unknown_sensor_returns_none() {
        let server = Server::new(Codec::new(1.0, 1.0));
        assert!(server.trajectory(99).is_none());
        assert!(server.sensor_ids().is_empty());
    }
}
