//! A seeded lossy channel between [`Sensor`](crate::Sensor)s and the
//! [`Server`](crate::Server): injects packet drops, duplicates, bounded
//! reordering, and payload bit-flips with configurable probabilities.
//!
//! Randomness is keyed on *packet identity* (sensor id + payload hash +
//! transmission attempt), not on call order. Two consequences matter for
//! experiments:
//!
//! * runs are reproducible regardless of how retransmissions interleave
//!   with fresh traffic, and
//! * across two runs that differ only in the drop rate, the set of dropped
//!   packets at the lower rate is a subset of the set at the higher rate —
//!   which is what makes loss sweeps monotone rather than merely monotone
//!   in expectation.

use crate::sensor::Packet;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Fault-injection knobs. All probabilities are independent per packet and
/// must lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Probability that a packet is silently dropped.
    pub drop: f64,
    /// Probability that a delivered packet arrives twice.
    pub duplicate: f64,
    /// Probability that a packet is held back and delivered late (behind
    /// up to [`ChannelConfig::reorder_depth`] newer packets).
    pub reorder: f64,
    /// Probability that a single payload bit is flipped in transit.
    pub corrupt: f64,
    /// Maximum number of newer packets a reordered packet can fall behind.
    pub reorder_depth: usize,
    /// Seed for the per-packet fault draws.
    pub seed: u64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            reorder_depth: 3,
            seed: 7,
        }
    }
}

impl ChannelConfig {
    /// A typical lossy uplink at the given drop rate: 5% duplicates,
    /// 5% reordering, 1% corruption.
    pub fn lossy(drop: f64, seed: u64) -> Self {
        ChannelConfig {
            drop,
            duplicate: 0.05,
            reorder: 0.05,
            corrupt: 0.01,
            reorder_depth: 3,
            seed,
        }
    }

    /// The same configuration with a different drop rate (loss sweeps).
    pub fn with_drop(mut self, drop: f64) -> Self {
        self.drop = drop;
        self
    }
}

/// Injected-fault accounting — the channel's ground truth, to compare
/// against what the server *observed* ([`LinkStats`](crate::LinkStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packets pushed into the channel (including retransmissions).
    pub offered: usize,
    /// Packets handed to the receiver (duplicates counted individually).
    pub delivered: usize,
    /// Packets dropped.
    pub dropped: usize,
    /// Packets duplicated (each adds one extra delivery).
    pub duplicated: usize,
    /// Packets held back for late delivery.
    pub reordered: usize,
    /// Packets whose payload had a bit flipped.
    pub corrupted: usize,
}

/// A fault-injecting channel. Push packets in transmission order; each
/// push returns the packets that come out the far end (possibly none, or
/// several). Call [`LossyChannel::drain`] at shutdown to flush packets
/// still held back for reordering.
///
/// # Example
///
/// ```
/// use sensornet::{ChannelConfig, LossyChannel, Packet};
///
/// // A channel that duplicates every packet (and nothing else).
/// let mut ch = LossyChannel::new(ChannelConfig {
///     duplicate: 1.0,
///     ..Default::default()
/// });
/// let pkt = Packet {
///     sensor_id: 1,
///     points: 0,
///     payload: bytes::Bytes::from_static(b"hello"),
/// };
/// let out = ch.push(pkt);
/// assert_eq!(out.len(), 2);
/// assert_eq!(ch.stats().duplicated, 1);
/// ```
pub struct LossyChannel {
    cfg: ChannelConfig,
    /// Held-back packets: (pushes survived, packet).
    held: Vec<(usize, Packet)>,
    /// Transmission attempts seen per packet identity.
    attempts: BTreeMap<u64, u32>,
    stats: ChannelStats,
}

impl LossyChannel {
    /// Creates a channel.
    ///
    /// # Panics
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(cfg: ChannelConfig) -> Self {
        for (name, p) in [
            ("drop", cfg.drop),
            ("duplicate", cfg.duplicate),
            ("reorder", cfg.reorder),
            ("corrupt", cfg.corrupt),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability must be in [0, 1]"
            );
        }
        LossyChannel {
            cfg,
            held: Vec::new(),
            attempts: BTreeMap::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Injected-fault counts so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Transmits one packet; returns whatever arrives at the receiver.
    ///
    /// Fault draws happen in a fixed order (drop, corrupt, duplicate,
    /// reorder) from a per-packet generator, so changing one probability
    /// does not perturb the draws of the other fault classes.
    pub fn push(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.offered += 1;
        let mut rng = self.packet_rng(&pkt);
        let mut out = Vec::new();
        if rng.chance(self.cfg.drop) {
            self.stats.dropped += 1;
        } else {
            let mut pkt = pkt;
            if rng.chance(self.cfg.corrupt) {
                flip_random_bit(&mut pkt, &mut rng);
                self.stats.corrupted += 1;
            }
            let duplicated = rng.chance(self.cfg.duplicate);
            if duplicated {
                self.stats.duplicated += 1;
                out.push(pkt.clone());
            }
            if self.cfg.reorder_depth > 0 && rng.chance(self.cfg.reorder) {
                // Held back: the duplicate (if any) races ahead.
                self.stats.reordered += 1;
                self.held.push((0, pkt));
            } else {
                out.push(pkt);
            }
        }
        // Age the holdback and release anything that has fallen
        // `reorder_depth` pushes behind — reordering is bounded.
        let depth = self.cfg.reorder_depth;
        let mut still = Vec::new();
        for (age, p) in self.held.drain(..) {
            if age + 1 >= depth {
                out.push(p);
            } else {
                still.push((age + 1, p));
            }
        }
        self.held = still;
        self.stats.delivered += out.len();
        out
    }

    /// Flushes all held-back packets (in their original order), e.g. at
    /// the end of a simulation.
    pub fn drain(&mut self) -> Vec<Packet> {
        let out: Vec<Packet> = self.held.drain(..).map(|(_, p)| p).collect();
        self.stats.delivered += out.len();
        out
    }

    /// A deterministic generator keyed on packet identity and attempt
    /// number (retransmissions get fresh draws).
    fn packet_rng(&mut self, pkt: &Packet) -> SplitMix64 {
        let key = packet_key(pkt);
        let attempt = self.attempts.entry(key).or_insert(0);
        *attempt += 1;
        SplitMix64::new(
            self.cfg
                .seed
                .wrapping_add(key)
                .wrapping_add((*attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// FNV-1a over the sensor id and payload bytes.
fn packet_key(pkt: &Packet) -> u64 {
    let id = pkt.sensor_id.to_be_bytes();
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in id.iter().chain(pkt.payload.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Flips one uniformly chosen payload bit.
fn flip_random_bit(pkt: &mut Packet, rng: &mut SplitMix64) {
    let mut bytes = pkt.payload.to_vec();
    if bytes.is_empty() {
        return;
    }
    let bit = rng.below(bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
    pkt.payload = Bytes::from(bytes);
}

/// SplitMix64 — a tiny, seedable, high-quality generator; keeps the crate
/// free of a `rand` dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::codec::Codec;
    use trajectory::Trajectory;

    fn packet(id: u32, seq: u32) -> Packet {
        let traj = Trajectory::from_xyt(&[
            (seq as f64, 0.0, seq as f64 * 10.0),
            (seq as f64 + 1.0, 1.0, seq as f64 * 10.0 + 5.0),
        ])
        .unwrap();
        let payload = Codec::new(0.01, 0.01).encode_framed(seq, &traj);
        Packet {
            sensor_id: id,
            points: traj.len(),
            payload,
        }
    }

    #[test]
    fn perfect_channel_passes_through_unchanged() {
        let mut ch = LossyChannel::new(ChannelConfig::default());
        for seq in 0..20 {
            let pkt = packet(1, seq);
            let out = ch.push(pkt.clone());
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].payload, pkt.payload);
        }
        assert!(ch.drain().is_empty());
        let s = ch.stats();
        assert_eq!(s.offered, 20);
        assert_eq!(s.delivered, 20);
        assert_eq!(
            s,
            ChannelStats {
                offered: 20,
                delivered: 20,
                ..Default::default()
            }
        );
    }

    #[test]
    fn full_drop_delivers_nothing() {
        let mut ch = LossyChannel::new(ChannelConfig {
            drop: 1.0,
            ..Default::default()
        });
        for seq in 0..10 {
            assert!(ch.push(packet(1, seq)).is_empty());
        }
        assert_eq!(ch.stats().dropped, 10);
        assert_eq!(ch.stats().delivered, 0);
    }

    #[test]
    fn full_duplication_delivers_twice() {
        let mut ch = LossyChannel::new(ChannelConfig {
            duplicate: 1.0,
            ..Default::default()
        });
        let out = ch.push(packet(1, 0));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, out[1].payload);
        assert_eq!(ch.stats().duplicated, 1);
        assert_eq!(ch.stats().delivered, 2);
    }

    #[test]
    fn corruption_is_detected_by_the_framed_codec() {
        let mut ch = LossyChannel::new(ChannelConfig {
            corrupt: 1.0,
            ..Default::default()
        });
        let codec = Codec::new(0.01, 0.01);
        for seq in 0..10 {
            let out = ch.push(packet(1, seq));
            assert_eq!(out.len(), 1);
            assert!(codec.decode(out[0].payload.clone()).is_err(), "seq {seq}");
        }
        assert_eq!(ch.stats().corrupted, 10);
    }

    #[test]
    fn reordering_is_bounded_and_lossless() {
        let mut ch = LossyChannel::new(ChannelConfig {
            reorder: 1.0,
            reorder_depth: 2,
            ..Default::default()
        });
        let mut arrived = Vec::new();
        for seq in 0..10 {
            arrived.extend(ch.push(packet(1, seq)));
        }
        arrived.extend(ch.drain());
        // Nothing lost, nothing duplicated.
        assert_eq!(arrived.len(), 10);
        assert_eq!(ch.stats().delivered, 10);
        assert_eq!(ch.stats().reordered, 10);
        // Every packet fell at most `reorder_depth` places behind.
        let codec = Codec::new(0.01, 0.01);
        for (pos, pkt) in arrived.iter().enumerate() {
            let (_, meta) = codec.decode_framed(pkt.payload.clone()).unwrap();
            let seq = meta.unwrap().seq as usize;
            assert!(pos <= seq + 2, "seq {seq} arrived at {pos}");
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = ChannelConfig::lossy(0.3, 42);
        let run = |cfg: ChannelConfig| {
            let mut ch = LossyChannel::new(cfg);
            let mut out = Vec::new();
            for seq in 0..50 {
                out.extend(ch.push(packet(2, seq)).into_iter().map(|p| p.payload));
            }
            out.extend(ch.drain().into_iter().map(|p| p.payload));
            (out, ch.stats())
        };
        let (a, sa) = run(cfg.clone());
        let (b, sb) = run(cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn drops_nest_across_rates() {
        // The packets surviving a 30% drop channel are a superset of those
        // surviving a 60% one (same seed): packet-identity-keyed draws.
        let deliver = |drop: f64| -> Vec<Bytes> {
            let mut ch = LossyChannel::new(ChannelConfig {
                drop,
                seed: 9,
                ..Default::default()
            });
            let mut out = Vec::new();
            for seq in 0..60 {
                out.extend(ch.push(packet(3, seq)).into_iter().map(|p| p.payload));
            }
            out
        };
        let low = deliver(0.3);
        let high = deliver(0.6);
        assert!(high.len() < low.len());
        for pkt in &high {
            assert!(low.contains(pkt));
        }
    }

    #[test]
    fn retransmissions_get_fresh_draws() {
        // With a 50% drop rate, pushing the same packet repeatedly must
        // eventually get through: attempts are part of the draw key.
        let mut ch = LossyChannel::new(ChannelConfig {
            drop: 0.5,
            seed: 1,
            ..Default::default()
        });
        let pkt = packet(4, 0);
        let delivered = (0..64).any(|_| !ch.push(pkt.clone()).is_empty());
        assert!(delivered);
    }

    #[test]
    #[should_panic]
    fn out_of_range_probability_rejected() {
        let _ = LossyChannel::new(ChannelConfig {
            drop: 1.5,
            ..Default::default()
        });
    }
}
