//! One sensor: a bounded buffer, an online simplifier, a flush policy, and
//! a bounded retransmission queue for NACK-driven recovery on lossy links.

use bytes::Bytes;
use std::collections::VecDeque;
use trajectory::codec::Codec;
use trajectory::{OnlineSimplifier, Point, Trajectory};

/// Sensor configuration.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Online buffer budget `W` (max points held between flushes).
    pub buffer: usize,
    /// Flush after this many *observed* points (a window). The simplifier
    /// reduces each window to at most `buffer` points before transmission.
    pub flush_points: usize,
    /// Wire codec for the uplink payload.
    pub codec: Codec,
    /// How many recently transmitted packets are kept for NACK-driven
    /// retransmission (`0` disables retransmission).
    pub retransmit_queue: usize,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            buffer: 32,
            flush_points: 256,
            codec: Codec::new(0.1, 0.1),
            retransmit_queue: 8,
        }
    }
}

/// A transmitted packet: the encoded simplified window of one sensor.
///
/// The payload uses the framed (v2) [`Codec`] format: it carries its own
/// sequence number, first/last timestamps, and CRC32, so the server can
/// detect gaps, replays, reordering, and corruption.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Originating sensor.
    pub sensor_id: u32,
    /// Encoded payload ([`Codec`] framed format).
    pub payload: Bytes,
    /// Number of simplified points inside.
    pub points: usize,
}

/// A sensor device streaming fixes through an online simplifier.
pub struct Sensor {
    id: u32,
    cfg: SensorConfig,
    algo: Box<dyn OnlineSimplifier>,
    window: Vec<Point>,
    observed: usize,
    /// Next packet sequence number.
    seq: u32,
    /// Recently transmitted packets, oldest first, bounded by
    /// `cfg.retransmit_queue`.
    sent: VecDeque<(u32, Packet)>,
}

impl Sensor {
    /// Creates a sensor with an id, a configuration, and its simplification
    /// algorithm.
    ///
    /// # Panics
    /// Panics if the flush window is smaller than the buffer (the window
    /// must be worth simplifying) or the buffer is below 2.
    pub fn new(id: u32, cfg: SensorConfig, algo: Box<dyn OnlineSimplifier>) -> Self {
        assert!(cfg.buffer >= 2, "buffer must hold at least 2 points");
        assert!(
            cfg.flush_points >= cfg.buffer,
            "flush window smaller than the buffer"
        );
        Sensor {
            id,
            cfg,
            algo,
            window: Vec::new(),
            observed: 0,
            seq: 0,
            sent: VecDeque::new(),
        }
    }

    /// The sensor id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total fixes observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The sequence number the next flushed packet will carry.
    pub fn next_seq(&self) -> u32 {
        self.seq
    }

    /// Re-sends the requested sequence numbers (server NACKs), oldest
    /// first. Sequence numbers that have already left the bounded
    /// retransmission queue are silently skipped — the data is gone.
    pub fn retransmit(&self, seqs: &[u32]) -> Vec<Packet> {
        self.sent
            .iter()
            .filter(|(s, _)| seqs.contains(s))
            .map(|(_, p)| p.clone())
            .collect()
    }

    /// Feeds one GPS fix; returns a packet when the flush window filled up.
    pub fn observe(&mut self, p: Point) -> Option<Packet> {
        self.window.push(p);
        self.observed += 1;
        if self.window.len() >= self.cfg.flush_points {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Forces transmission of whatever is buffered (e.g. at shutdown).
    /// Returns `None` when nothing is pending.
    pub fn force_flush(&mut self) -> Option<Packet> {
        if self.window.len() < 2 {
            return None;
        }
        Some(self.flush())
    }

    fn flush(&mut self) -> Packet {
        let window = std::mem::take(&mut self.window);
        let kept = self.algo.run(&window, self.cfg.buffer);
        let pts: Vec<Point> = kept.iter().map(|&i| window[i]).collect();
        let simplified = Trajectory::new(pts).expect("kept subset of a valid window is valid");
        let points = simplified.len();
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let payload = self.cfg.codec.encode_framed(seq, &simplified);
        let pkt = Packet {
            sensor_id: self.id,
            payload,
            points,
        };
        if self.cfg.retransmit_queue > 0 {
            self.sent.push_back((seq, pkt.clone()));
            while self.sent.len() > self.cfg.retransmit_queue {
                self.sent.pop_front();
            }
        }
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::Squish;
    use trajectory::error::Measure;

    fn sensor(buffer: usize, flush: usize) -> Sensor {
        Sensor::new(
            7,
            SensorConfig {
                buffer,
                flush_points: flush,
                codec: Codec::new(0.01, 0.01),
                ..Default::default()
            },
            Box::new(Squish::new(Measure::Sed)),
        )
    }

    fn fix(i: usize) -> Point {
        Point::new(i as f64, (i as f64 * 0.4).sin(), i as f64)
    }

    #[test]
    fn flushes_every_window() {
        let mut s = sensor(4, 10);
        let mut packets = 0;
        for i in 0..35 {
            if let Some(pkt) = s.observe(fix(i)) {
                packets += 1;
                assert_eq!(pkt.sensor_id, 7);
                assert!(pkt.points <= 4);
                assert!(!pkt.payload.is_empty());
            }
        }
        assert_eq!(packets, 3);
        assert_eq!(s.observed(), 35);
        // 5 fixes still pending.
        let tail = s.force_flush().unwrap();
        assert!(tail.points <= 4);
        assert!(s.force_flush().is_none());
    }

    #[test]
    fn payload_decodes_to_simplified_window() {
        let mut s = sensor(3, 8);
        let mut pkt = None;
        for i in 0..8 {
            pkt = s.observe(fix(i)).or(pkt);
        }
        let pkt = pkt.expect("one flush");
        let decoded = Codec::new(1.0, 1.0).decode(pkt.payload).unwrap();
        assert_eq!(decoded.len(), pkt.points);
        assert!(decoded.len() <= 3);
        // Window endpoints survive (within codec resolution).
        assert!((decoded[0].x - 0.0).abs() < 0.01);
        assert!((decoded[decoded.len() - 1].x - 7.0).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn window_smaller_than_buffer_rejected() {
        let _ = sensor(16, 8);
    }

    #[test]
    fn packets_carry_consecutive_sequence_numbers() {
        let mut s = sensor(4, 10);
        let codec = Codec::new(1.0, 1.0);
        let mut seqs = Vec::new();
        for i in 0..30 {
            if let Some(pkt) = s.observe(fix(i)) {
                let (_, meta) = codec.decode_framed(pkt.payload).unwrap();
                seqs.push(meta.expect("framed payload").seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(s.next_seq(), 3);
    }

    #[test]
    fn retransmit_replays_queued_packets_only() {
        let mut s = Sensor::new(
            7,
            SensorConfig {
                buffer: 3,
                flush_points: 5,
                codec: Codec::new(0.01, 0.01),
                retransmit_queue: 2,
            },
            Box::new(Squish::new(Measure::Sed)),
        );
        let mut originals = Vec::new();
        for i in 0..20 {
            if let Some(pkt) = s.observe(fix(i)) {
                originals.push(pkt);
            }
        }
        assert_eq!(originals.len(), 4); // seqs 0..=3, queue holds 2 and 3
        let replayed = s.retransmit(&[0, 1, 2, 3]);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].payload, originals[2].payload);
        assert_eq!(replayed[1].payload, originals[3].payload);
        // Seqs outside the queue are gone.
        assert!(s.retransmit(&[0]).is_empty());
    }

    #[test]
    fn zero_retransmit_queue_disables_replay() {
        let mut s = Sensor::new(
            7,
            SensorConfig {
                buffer: 3,
                flush_points: 5,
                codec: Codec::new(0.01, 0.01),
                retransmit_queue: 0,
            },
            Box::new(Squish::new(Measure::Sed)),
        );
        for i in 0..10 {
            let _ = s.observe(fix(i));
        }
        assert!(s.retransmit(&[0, 1]).is_empty());
    }

    #[test]
    fn force_flush_needs_two_points() {
        let mut s = sensor(2, 10);
        assert!(s.force_flush().is_none());
        s.observe(fix(0));
        assert!(s.force_flush().is_none()); // single point is not a trajectory
        s.observe(fix(0));
        s.observe(fix(1));
        assert!(s.force_flush().is_some());
    }
}
