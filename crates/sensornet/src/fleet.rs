//! Fleet simulation: drive many sensors from ground-truth trajectories in
//! global timestamp order, collect everything at a server, and score the
//! outcome against the ground truth.

use crate::sensor::{Sensor, SensorConfig};
use crate::server::{LinkStats, Server};
use trajectory::error::{simplification_error, Aggregation, Measure};
use trajectory::{OnlineSimplifier, Trajectory};

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Uplink statistics.
    pub link: LinkStats,
    /// What the raw fixes would have cost on the wire (24 B/point).
    pub raw_bytes: usize,
    /// Total uplink payload bytes.
    pub uplink_bytes: usize,
    /// Mean (over sensors) max-aggregated error of the reassembled
    /// trajectory against the ground truth, under the scoring measure.
    pub mean_error: f64,
    /// Worst per-sensor error.
    pub max_error: f64,
    /// Number of sensors simulated.
    pub sensors: usize,
}

impl FleetReport {
    /// Wire-size reduction factor (raw / uplink).
    pub fn compression(&self) -> f64 {
        if self.uplink_bytes == 0 {
            return f64::INFINITY;
        }
        self.raw_bytes as f64 / self.uplink_bytes as f64
    }
}

/// Fleet simulation driver.
pub struct FleetSim {
    cfg: SensorConfig,
}

impl FleetSim {
    /// Creates a simulation where every sensor uses the same configuration.
    pub fn new(cfg: SensorConfig) -> Self {
        FleetSim { cfg }
    }

    /// Runs the fleet: trajectory `i` becomes sensor `i`'s ground truth.
    /// `make_algo` builds each sensor's simplifier for the scoring measure.
    ///
    /// Fixes are delivered in global timestamp order (interleaved across
    /// sensors, as a shared radio channel would see them); ties break by
    /// sensor id. Pending buffers are force-flushed at the end.
    pub fn run(
        &self,
        truth: &[Trajectory],
        mut make_algo: impl FnMut(Measure) -> Box<dyn OnlineSimplifier>,
        measure: Measure,
    ) -> FleetReport {
        let mut sensors: Vec<Sensor> = truth
            .iter()
            .enumerate()
            .map(|(i, _)| Sensor::new(i as u32, self.cfg.clone(), make_algo(measure)))
            .collect();
        let mut server = Server::new(self.cfg.codec.clone());

        // Global timestamp-ordered event loop over per-sensor cursors.
        let mut cursors = vec![0usize; truth.len()];
        loop {
            let mut next: Option<(f64, usize)> = None;
            for (s, t) in truth.iter().enumerate() {
                if let Some(p) = t.get(cursors[s]) {
                    if next.is_none_or(|(bt, _)| p.t < bt) {
                        next = Some((p.t, s));
                    }
                }
            }
            let Some((_, s)) = next else { break };
            let p = truth[s][cursors[s]];
            cursors[s] += 1;
            if let Some(pkt) = sensors[s].observe(p) {
                server.ingest(&pkt).expect("sensor packets are well-formed and ordered");
            }
        }
        for sensor in sensors.iter_mut() {
            if let Some(pkt) = sensor.force_flush() {
                server.ingest(&pkt).expect("final flush is well-formed");
            }
        }

        // Score each reassembled stream against its ground truth by the
        // kept *positions* (match reassembled timestamps back to indices).
        let mut err_sum = 0.0;
        let mut err_max = 0.0f64;
        let mut scored = 0usize;
        for (s, t) in truth.iter().enumerate() {
            let Some(got) = server.trajectory(s as u32) else { continue };
            let kept = match_kept_indices(t, &got, self.cfg.codec.spatial_error_bound());
            if kept.len() < 2 {
                continue;
            }
            let e = simplification_error(measure, t.points(), &kept, Aggregation::Max);
            err_sum += e;
            err_max = err_max.max(e);
            scored += 1;
        }

        let raw_bytes: usize = truth.iter().map(|t| t.len() * 24).sum();
        let link = server.stats();
        FleetReport {
            raw_bytes,
            uplink_bytes: link.bytes,
            link,
            mean_error: err_sum / scored.max(1) as f64,
            max_error: err_max,
            sensors: truth.len(),
        }
    }
}

/// Maps a reassembled (quantized) trajectory back to the ground-truth
/// indices of its kept points, matching by nearest timestamp and forcing
/// the endpoint invariants.
fn match_kept_indices(truth: &Trajectory, got: &Trajectory, _tol: f64) -> Vec<usize> {
    let pts = truth.points();
    let mut kept = Vec::with_capacity(got.len());
    let mut lo = 0usize;
    for g in got.iter() {
        // Timestamps are non-decreasing in both: advance a cursor.
        while lo + 1 < pts.len() && (pts[lo + 1].t - g.t).abs() <= (pts[lo].t - g.t).abs() {
            lo += 1;
        }
        kept.push(lo);
    }
    kept.dedup();
    if kept.first() != Some(&0) {
        kept.insert(0, 0);
    }
    if kept.last() != Some(&(pts.len() - 1)) {
        kept.push(pts.len() - 1);
    }
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Squish, SquishE};
    use trajectory::codec::Codec;

    fn truth(count: usize, n: usize) -> Vec<Trajectory> {
        (0..count)
            .map(|c| {
                Trajectory::new(
                    (0..n)
                        .map(|i| {
                            let f = i as f64;
                            trajectory::Point::new(
                                f * 3.0 + c as f64 * 500.0,
                                (f * 0.3 + c as f64).sin() * 10.0,
                                f * 2.0 + c as f64 * 0.1,
                            )
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    fn cfg() -> SensorConfig {
        SensorConfig { buffer: 8, flush_points: 32, codec: Codec::new(0.05, 0.05) }
    }

    #[test]
    fn fleet_compresses_and_scores() {
        let data = truth(3, 100);
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 3);
        assert!(report.uplink_bytes < report.raw_bytes, "{report:?}");
        assert!(report.compression() > 2.0, "{}", report.compression());
        assert!(report.mean_error.is_finite() && report.mean_error >= 0.0);
        assert!(report.max_error >= report.mean_error);
        // Every sensor flushed at least 100/32 full windows + the tail.
        assert!(report.link.packets >= 3 * 3, "{:?}", report.link);
    }

    #[test]
    fn smaller_buffer_means_fewer_bytes_more_error() {
        let data = truth(2, 200);
        let tight = SensorConfig { buffer: 4, flush_points: 50, codec: Codec::new(0.05, 0.05) };
        let loose = SensorConfig { buffer: 25, flush_points: 50, codec: Codec::new(0.05, 0.05) };
        let rt = FleetSim::new(tight).run(&data, |m| Box::new(SquishE::new(m)), Measure::Sed);
        let rl = FleetSim::new(loose).run(&data, |m| Box::new(SquishE::new(m)), Measure::Sed);
        assert!(rt.uplink_bytes < rl.uplink_bytes, "{} !< {}", rt.uplink_bytes, rl.uplink_bytes);
        assert!(rt.mean_error >= rl.mean_error, "{} !>= {}", rt.mean_error, rl.mean_error);
    }

    #[test]
    fn interleaving_preserves_per_sensor_streams() {
        // Overlapping timestamps across sensors must not mix streams.
        let data = truth(4, 60);
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 4);
        // All sensors contributed points.
        assert!(report.link.points >= 4 * 2);
    }

    #[test]
    fn single_point_trajectory_is_tolerated() {
        let mut data = truth(1, 40);
        data.push(Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap());
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 2);
        assert!(report.mean_error.is_finite());
    }
}
