//! Fleet simulation: drive many sensors from ground-truth trajectories in
//! global timestamp order, push every packet through an (optionally lossy)
//! uplink channel, collect everything at a server, and score the outcome
//! against the ground truth.

use crate::channel::{ChannelConfig, ChannelStats, LossyChannel};
use crate::sensor::{Packet, Sensor, SensorConfig};
use crate::server::{LinkStats, Server};
use std::collections::VecDeque;
use trajectory::error::{simplification_error, Aggregation, Measure};
use trajectory::{OnlineSimplifier, Trajectory};

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Uplink statistics as observed by the server.
    pub link: LinkStats,
    /// Fault-injection statistics, when the run used a lossy channel.
    pub channel: Option<ChannelStats>,
    /// What the raw fixes would have cost on the wire (24 B/point).
    pub raw_bytes: usize,
    /// Total uplink payload bytes.
    pub uplink_bytes: usize,
    /// Mean (over sensors) max-aggregated error of the reassembled
    /// trajectory against the ground truth, under the scoring measure.
    pub mean_error: f64,
    /// Worst per-sensor error.
    pub max_error: f64,
    /// Number of sensors simulated.
    pub sensors: usize,
}

impl FleetReport {
    /// Wire-size reduction factor (raw / uplink).
    pub fn compression(&self) -> f64 {
        if self.uplink_bytes == 0 {
            return f64::INFINITY;
        }
        self.raw_bytes as f64 / self.uplink_bytes as f64
    }
}

/// Fleet simulation driver.
pub struct FleetSim {
    cfg: SensorConfig,
    channel: Option<ChannelConfig>,
    threads: usize,
}

impl FleetSim {
    /// Creates a simulation where every sensor uses the same configuration
    /// and the uplink is perfect.
    pub fn new(cfg: SensorConfig) -> Self {
        FleetSim {
            cfg,
            channel: None,
            threads: 0,
        }
    }

    /// Routes every packet through a seeded [`LossyChannel`] instead of a
    /// perfect link.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Sets the worker-thread count for [`FleetSim::loss_sweep`]
    /// (`0`, the default, means available parallelism). Each drop rate is
    /// an independent simulation, so results are identical at any count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the fleet: trajectory `i` becomes sensor `i`'s ground truth.
    /// `make_algo` builds each sensor's simplifier for the scoring measure.
    ///
    /// Fixes are delivered in global timestamp order (interleaved across
    /// sensors, as a shared radio channel would see them); ties break by
    /// sensor id. Pending buffers are force-flushed at the end, the channel
    /// is drained, and one final recovery round retransmits whatever the
    /// server still reports missing. Faulty packets never abort the run:
    /// corruption surfaces as an ingest error the loop tolerates, loss
    /// surfaces as gaps in [`LinkStats`].
    pub fn run(
        &self,
        truth: &[Trajectory],
        mut make_algo: impl FnMut(Measure) -> Box<dyn OnlineSimplifier>,
        measure: Measure,
    ) -> FleetReport {
        let mut sensors: Vec<Sensor> = truth
            .iter()
            .enumerate()
            .map(|(i, _)| Sensor::new(i as u32, self.cfg.clone(), make_algo(measure)))
            .collect();
        let mut server = Server::new(self.cfg.codec.clone());
        let mut channel = self.channel.clone().map(LossyChannel::new);

        // Global timestamp-ordered event loop over per-sensor cursors.
        let mut cursors = vec![0usize; truth.len()];
        loop {
            let mut next: Option<(f64, usize)> = None;
            for (s, t) in truth.iter().enumerate() {
                if let Some(p) = t.get(cursors[s]) {
                    if next.is_none_or(|(bt, _)| p.t < bt) {
                        next = Some((p.t, s));
                    }
                }
            }
            let Some((_, s)) = next else { break };
            let p = truth[s][cursors[s]];
            cursors[s] += 1;
            if let Some(pkt) = sensors[s].observe(p) {
                deliver(&mut server, &sensors, channel.as_mut(), pkt);
            }
        }
        for s in 0..sensors.len() {
            if let Some(pkt) = sensors[s].force_flush() {
                deliver(&mut server, &sensors, channel.as_mut(), pkt);
            }
        }
        // Flush whatever the channel still holds in its reorder buffer.
        drain_channel(&mut server, &sensors, &mut channel);
        // Final recovery round: retransmit everything still missing, once
        // more through the channel (retransmissions may be lost too).
        for (sensor_id, seqs) in server.outstanding() {
            if let Some(sensor) = sensors.get(sensor_id as usize) {
                for pkt in sensor.retransmit(&seqs) {
                    deliver(&mut server, &sensors, channel.as_mut(), pkt);
                }
            }
        }
        drain_channel(&mut server, &sensors, &mut channel);

        // Score each reassembled stream against its ground truth by the
        // kept *positions* (match reassembled timestamps back to indices).
        let m_error = obskit::global().histogram_with(
            "sensornet.stream.error",
            &[("measure", measure.name())],
            obskit::Buckets::exponential(1e-4, 10.0, 10),
        );
        let mut err_sum = 0.0;
        let mut err_max = 0.0f64;
        let mut scored = 0usize;
        for (s, t) in truth.iter().enumerate() {
            let Some(got) = server.trajectory(s as u32) else {
                continue;
            };
            let kept = match_kept_indices(t, &got, self.cfg.codec.spatial_error_bound());
            if kept.len() < 2 {
                continue;
            }
            let e = simplification_error(measure, t.points(), &kept, Aggregation::Max);
            m_error.record(e);
            err_sum += e;
            err_max = err_max.max(e);
            scored += 1;
        }

        let raw_bytes: usize = truth.iter().map(|t| t.len() * 24).sum();
        let link = server.stats();
        FleetReport {
            raw_bytes,
            uplink_bytes: link.bytes,
            link,
            channel: channel.as_ref().map(|ch| ch.stats()),
            mean_error: err_sum / scored.max(1) as f64,
            max_error: err_max,
            sensors: truth.len(),
        }
    }

    /// Runs the same fleet at several channel drop rates and returns
    /// `(drop_rate, report)` pairs, one per rate. The non-drop fault knobs
    /// and the seed come from the channel set via [`FleetSim::with_channel`]
    /// (or a perfect channel when none was set), so the sweep isolates the
    /// effect of loss. With a fixed seed, drop decisions nest across rates:
    /// every packet lost at 5% is also lost at 10%, which makes the
    /// error-vs-loss curve monotone rather than merely monotone in
    /// expectation.
    ///
    /// The rates run concurrently over [`FleetSim::with_threads`] workers
    /// (each rate is a fully independent simulation), so `make_algo` must
    /// be `Fn + Sync` — it is called once per sensor per rate, possibly
    /// from several threads at once.
    ///
    /// # Example
    ///
    /// ```
    /// use sensornet::{ChannelConfig, FleetSim, SensorConfig};
    /// use baselines::Squish;
    /// use trajectory::error::Measure;
    /// use trajectory::Trajectory;
    ///
    /// let truth = vec![Trajectory::from_xyt(
    ///     &(0..60).map(|i| (i as f64, 0.0, i as f64)).collect::<Vec<_>>(),
    /// ).unwrap()];
    /// let cfg = SensorConfig { buffer: 8, flush_points: 8, ..Default::default() };
    /// let sweep = FleetSim::new(cfg)
    ///     .with_channel(ChannelConfig::lossy(0.0, 42))
    ///     .loss_sweep(&truth, |m| Box::new(Squish::new(m)), Measure::Sed, &[0.0, 0.2]);
    /// assert_eq!(sweep.len(), 2);
    /// // More loss never delivers more packets (same seed nests the drops).
    /// assert!(sweep[1].1.link.packets <= sweep[0].1.link.packets);
    /// ```
    pub fn loss_sweep(
        &self,
        truth: &[Trajectory],
        make_algo: impl Fn(Measure) -> Box<dyn OnlineSimplifier> + Sync,
        measure: Measure,
        drop_rates: &[f64],
    ) -> Vec<(f64, FleetReport)> {
        let base = self.channel.clone().unwrap_or_default();
        let reports = parkit::map(self.threads, drop_rates, |_, &rate| {
            let sim = FleetSim {
                cfg: self.cfg.clone(),
                channel: Some(base.clone().with_drop(rate)),
                threads: 1,
            };
            sim.run(truth, &make_algo, measure)
        });
        drop_rates.iter().copied().zip(reports).collect()
    }
}

/// Pushes one packet through the channel (if any) and ingests whatever
/// comes out, feeding server NACKs back into the sensors' retransmission
/// queues. Retransmissions go through the channel again — they can be
/// dropped or corrupted like any other packet.
fn deliver(
    server: &mut Server,
    sensors: &[Sensor],
    mut channel: Option<&mut LossyChannel>,
    first: Packet,
) {
    let mut queue: VecDeque<Packet> = VecDeque::new();
    queue.push_back(first);
    while let Some(pkt) = queue.pop_front() {
        let delivered = match channel.as_deref_mut() {
            Some(ch) => ch.push(pkt),
            None => vec![pkt],
        };
        for pkt in delivered {
            for re in ingest_and_recover(server, sensors, pkt) {
                queue.push_back(re);
            }
        }
    }
}

/// Releases the channel's reorder holdback and ingests it, sending any
/// elicited retransmissions back through the channel.
fn drain_channel(server: &mut Server, sensors: &[Sensor], channel: &mut Option<LossyChannel>) {
    let drained = channel.as_mut().map(|ch| ch.drain()).unwrap_or_default();
    let mut pending = Vec::new();
    for pkt in drained {
        pending.extend(ingest_and_recover(server, sensors, pkt));
    }
    for re in pending {
        deliver(server, sensors, channel.as_mut(), re);
    }
}

/// Ingests one packet, tolerating faults, and returns any retransmissions
/// the server's NACKs elicited from the owning sensor.
fn ingest_and_recover(server: &mut Server, sensors: &[Sensor], pkt: Packet) -> Vec<Packet> {
    let sensor_id = pkt.sensor_id;
    match server.ingest(&pkt) {
        Ok(report) if !report.nack.is_empty() => sensors
            .get(sensor_id as usize)
            .map(|s| s.retransmit(&report.nack))
            .unwrap_or_default(),
        Ok(_) => Vec::new(),
        // Corrupt payload: counted by the server, nothing to recover from
        // this packet (the data may come back via a gap NACK later).
        Err(_) => Vec::new(),
    }
}

/// Maps a reassembled (quantized) trajectory back to the ground-truth
/// indices of its kept points, matching by nearest timestamp and forcing
/// the endpoint invariants. Degenerate inputs (empty or single-point
/// ground truth) short-circuit instead of indexing past the end.
fn match_kept_indices(truth: &Trajectory, got: &Trajectory, _tol: f64) -> Vec<usize> {
    let pts = truth.points();
    if pts.is_empty() {
        return Vec::new();
    }
    if pts.len() == 1 {
        return vec![0];
    }
    let mut kept = Vec::with_capacity(got.len());
    let mut lo = 0usize;
    for g in got.iter() {
        // Timestamps are non-decreasing in both: advance a cursor.
        while lo + 1 < pts.len() && (pts[lo + 1].t - g.t).abs() <= (pts[lo].t - g.t).abs() {
            lo += 1;
        }
        kept.push(lo);
    }
    kept.dedup();
    if kept.first() != Some(&0) {
        kept.insert(0, 0);
    }
    if kept.last() != Some(&(pts.len() - 1)) {
        kept.push(pts.len() - 1);
    }
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Squish, SquishE};
    use trajectory::codec::Codec;

    fn truth(count: usize, n: usize) -> Vec<Trajectory> {
        (0..count)
            .map(|c| {
                Trajectory::new(
                    (0..n)
                        .map(|i| {
                            let f = i as f64;
                            trajectory::Point::new(
                                f * 3.0 + c as f64 * 500.0,
                                (f * 0.3 + c as f64).sin() * 10.0,
                                f * 2.0 + c as f64 * 0.1,
                            )
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    fn cfg() -> SensorConfig {
        SensorConfig {
            buffer: 8,
            flush_points: 32,
            codec: Codec::new(0.05, 0.05),
            ..Default::default()
        }
    }

    #[test]
    fn fleet_compresses_and_scores() {
        let data = truth(3, 100);
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 3);
        assert!(report.uplink_bytes < report.raw_bytes, "{report:?}");
        assert!(report.compression() > 2.0, "{}", report.compression());
        assert!(report.mean_error.is_finite() && report.mean_error >= 0.0);
        assert!(report.max_error >= report.mean_error);
        assert!(report.channel.is_none());
        // Every sensor flushed at least 100/32 full windows + the tail.
        assert!(report.link.packets >= 3 * 3, "{:?}", report.link);
    }

    #[test]
    fn smaller_buffer_means_fewer_bytes_more_error() {
        let data = truth(2, 200);
        let tight = SensorConfig {
            buffer: 4,
            flush_points: 50,
            codec: Codec::new(0.05, 0.05),
            ..Default::default()
        };
        let loose = SensorConfig {
            buffer: 25,
            flush_points: 50,
            codec: Codec::new(0.05, 0.05),
            ..Default::default()
        };
        let rt = FleetSim::new(tight).run(&data, |m| Box::new(SquishE::new(m)), Measure::Sed);
        let rl = FleetSim::new(loose).run(&data, |m| Box::new(SquishE::new(m)), Measure::Sed);
        assert!(
            rt.uplink_bytes < rl.uplink_bytes,
            "{} !< {}",
            rt.uplink_bytes,
            rl.uplink_bytes
        );
        assert!(
            rt.mean_error >= rl.mean_error,
            "{} !>= {}",
            rt.mean_error,
            rl.mean_error
        );
    }

    #[test]
    fn interleaving_preserves_per_sensor_streams() {
        // Overlapping timestamps across sensors must not mix streams.
        let data = truth(4, 60);
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 4);
        // All sensors contributed points.
        assert!(report.link.points >= 4 * 2);
    }

    #[test]
    fn single_point_trajectory_is_tolerated() {
        let mut data = truth(1, 40);
        data.push(Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap());
        let report = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(report.sensors, 2);
        assert!(report.mean_error.is_finite());
    }

    #[test]
    fn match_kept_indices_handles_degenerate_streams() {
        let single = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        let pair = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]).unwrap();
        assert_eq!(match_kept_indices(&single, &pair, 0.1), vec![0]);
        assert_eq!(match_kept_indices(&single, &single, 0.1), vec![0]);
        assert_eq!(match_kept_indices(&pair, &single, 0.1), vec![0, 1]);
    }

    #[test]
    fn lossy_channel_run_completes_and_accounts() {
        let data = truth(3, 120);
        let channel = ChannelConfig {
            drop: 0.10,
            duplicate: 0.05,
            reorder: 0.05,
            corrupt: 0.01,
            reorder_depth: 3,
            seed: 99,
        };
        let report = FleetSim::new(cfg()).with_channel(channel).run(
            &data,
            |m| Box::new(Squish::new(m)),
            Measure::Sed,
        );
        let ch = report.channel.expect("channel stats present");
        // Conservation: everything offered either arrived or was dropped,
        // modulo duplication.
        assert_eq!(ch.delivered + ch.dropped, ch.offered + ch.duplicated);
        assert!(report.mean_error.is_finite());
        // Unrecovered holes are bounded by what the channel injected
        // (drops, plus corrupted packets that never got replayed).
        assert!(report.link.dropped <= ch.dropped + ch.corrupted);
    }

    #[test]
    fn loss_sweep_is_thread_count_invariant() {
        let data = truth(2, 100);
        let rates = [0.0, 0.05, 0.1, 0.2];
        let channel = ChannelConfig::lossy(0.0, 13);
        let serial = FleetSim::new(cfg())
            .with_channel(channel.clone())
            .with_threads(1)
            .loss_sweep(&data, |m| Box::new(Squish::new(m)), Measure::Sed, &rates);
        for threads in [2, 4, 8] {
            let parallel = FleetSim::new(cfg())
                .with_channel(channel.clone())
                .with_threads(threads)
                .loss_sweep(&data, |m| Box::new(Squish::new(m)), Measure::Sed, &rates);
            for ((rs, s), (rp, p)) in serial.iter().zip(&parallel) {
                assert_eq!(rs, rp);
                assert_eq!(
                    s.link.packets, p.link.packets,
                    "packet counts diverged at {threads} threads (rate {rs})"
                );
                assert_eq!(
                    s.mean_error, p.mean_error,
                    "errors diverged at {threads} threads (rate {rs})"
                );
            }
        }
    }

    #[test]
    fn perfect_channel_matches_no_channel() {
        let data = truth(2, 80);
        let plain = FleetSim::new(cfg()).run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        let piped = FleetSim::new(cfg())
            .with_channel(ChannelConfig::default())
            .run(&data, |m| Box::new(Squish::new(m)), Measure::Sed);
        assert_eq!(plain.link.packets, piped.link.packets);
        assert_eq!(plain.uplink_bytes, piped.uplink_bytes);
        assert_eq!(plain.mean_error, piped.mean_error);
    }
}
