//! Property tests for the query layer (ISSUE 10 satellite).
//!
//! The load-bearing properties: R-tree range and kNN answers are
//! **bit-identical** to the brute-force scans over arbitrary trajectory
//! sets (the tree may only prune, never change an answer), the workload
//! generator is a pure function of its seed, and the allocator always
//! lands exactly on its clamped target with floors respected.

use crate::allocate::{allocate, AllocateConfig};
use crate::geom::Mbr;
use crate::rtree::{Database, RTree};
use crate::workload::WorkloadSpec;
use proptest::prelude::*;
use trajectory::Point;

prop_compose! {
    /// One random finite trajectory; lengths 0 and 1 included on purpose
    /// (empty trajectories are never indexed, singletons degrade to
    /// point geometry).
    fn traj()
        (n in 0usize..40)
        (coords in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), n))
        -> Vec<Point>
    {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point { x, y, t: i as f64 })
            .collect()
    }
}

prop_compose! {
    /// A random database of up to `max` trajectories.
    fn database(max: usize)
        (trajs in prop::collection::vec(traj(), 0..max))
        -> Database
    {
        Database::from_points(&trajs)
    }
}

prop_compose! {
    /// A random closed query window (possibly degenerate, possibly far
    /// outside the data).
    fn rect()
        (cx in -60.0..60.0f64, cy in -60.0..60.0f64,
         w in 0.0..40.0f64, h in 0.0..40.0f64)
        -> Mbr
    {
        Mbr::new(cx - 0.5 * w, cy - 0.5 * h, cx + 0.5 * w, cy + 0.5 * h)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_range_bit_identical_to_scan(
        db in database(24),
        queries in prop::collection::vec(rect(), 1..8),
    ) {
        let tree = RTree::build(&db);
        for r in &queries {
            prop_assert_eq!(tree.range(&db, r), RTree::range_scan(&db, r));
        }
    }

    #[test]
    fn rtree_knn_bit_identical_to_scan(
        db in database(24),
        probes in prop::collection::vec((-60.0..60.0f64, -60.0..60.0f64), 1..8),
        k in 1usize..30,
    ) {
        let tree = RTree::build(&db);
        for &(x, y) in &probes {
            prop_assert_eq!(tree.knn(&db, x, y, k), RTree::knn_scan(&db, x, y, k));
        }
    }

    #[test]
    fn workload_is_pure_function_of_seed(
        db in database(12),
        seed in prop::num::u64::ANY,
    ) {
        let spec = WorkloadSpec { seed, ranges: 16, probes: 8, ..WorkloadSpec::default() };
        let a = spec.generate(&db).render();
        let b = spec.generate(&db).render();
        prop_assert_eq!(&a, &b);
        if db.total_points() > 0 {
            // A different seed must produce a different byte stream
            // (astronomically unlikely to collide).
            let other = WorkloadSpec { seed: seed.wrapping_add(1), ..spec };
            prop_assert!(other.generate(&db).render() != a);
        }
    }

    #[test]
    fn allocator_hits_target_and_floors(
        db in database(12),
        budget in 0usize..2000,
        threads in 1usize..5,
    ) {
        let wl = WorkloadSpec { ranges: 8, probes: 4, ..WorkloadSpec::default() }.generate(&db);
        let cfg = AllocateConfig {
            global_budget: budget,
            threads,
            ..AllocateConfig::new(0)
        };
        let alloc = allocate(&db, &wl, &cfg);
        prop_assert_eq!(alloc.budgets.iter().sum::<usize>(), alloc.target_total);
        prop_assert!(alloc.target_total >= alloc.floors_total);
        prop_assert!(alloc.target_total <= db.total_points());
        for id in 0..db.len() {
            let n = db.cols(id).len();
            prop_assert!(alloc.budgets[id] <= n);
            prop_assert!(alloc.budgets[id] >= n.min(2));
            // Kept indices ascending, endpoints preserved.
            let k = &alloc.kept[id];
            prop_assert!(k.windows(2).all(|w| w[0] < w[1]));
            if n > 0 {
                prop_assert_eq!(k[0], 0);
                prop_assert_eq!(*k.last().unwrap(), n - 1);
            }
        }
        // The guard: whatever arm was adopted scores at least uniform.
        prop_assert!(alloc.final_accuracy().at_least(&alloc.uniform));
    }
}
