//! Bulk-loaded STR-packed R-tree over trajectory MBRs.
//!
//! The tree is built once over an immutable [`Database`] with
//! Sort-Tile-Recursive packing (Leutenegger et al.): entries are sorted by
//! MBR center-x, cut into vertical slices, each slice sorted by center-y,
//! and packed into full nodes of [`FANOUT`]. Upper levels repeat the same
//! packing over the node MBRs until one root remains. All sort keys break
//! ties on trajectory id, so the layout is a pure function of the data.
//!
//! Queries prune on node MBRs, then **refine at the leaves with the exact
//! segment geometry from [`crate::geom`]** — the same functions the
//! brute-force scans use. Pruning is conservative (an MBR test can only
//! over-approximate), so [`RTree::range`] equals [`RTree::range_scan`] and
//! [`RTree::knn`] equals [`RTree::knn_scan`] bit for bit; the proptests in
//! this crate gate exactly that.

use crate::geom::{traj_dist_sq, traj_intersects_rect, Mbr};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use trajectory::cols::{ColsView, TrajCols};
use trajectory::Point;

/// Node fanout for STR packing. 16 keeps the tree shallow on the corpus
/// sizes we index (thousands of trajectories → 3 levels) while nodes stay
/// two cache lines of MBRs.
pub const FANOUT: usize = 16;

/// An immutable set of trajectories, indexed by position (the trajectory
/// id used in every query answer).
#[derive(Debug, Clone, Default)]
pub struct Database {
    trajs: Vec<TrajCols>,
}

impl Database {
    /// Wraps pre-built columnar trajectories.
    pub fn new(trajs: Vec<TrajCols>) -> Self {
        Database { trajs }
    }

    /// Converts point-slice trajectories into a columnar database.
    pub fn from_points<T: AsRef<[Point]>>(trajs: &[T]) -> Self {
        Database {
            trajs: trajs
                .iter()
                .map(|t| TrajCols::from_points(t.as_ref()))
                .collect(),
        }
    }

    /// Number of trajectories (including empty ones, which no query
    /// ever returns).
    pub fn len(&self) -> usize {
        self.trajs.len()
    }

    /// True when the database holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.trajs.is_empty()
    }

    /// Columnar view of trajectory `id`.
    pub fn cols(&self, id: usize) -> ColsView<'_> {
        self.trajs[id].view()
    }

    /// Total number of points across all trajectories.
    pub fn total_points(&self) -> usize {
        self.trajs.iter().map(|t| t.len()).sum()
    }

    /// The union MBR of every trajectory (empty if no points exist).
    pub fn extent(&self) -> Mbr {
        let mut m = Mbr::empty();
        for t in &self.trajs {
            m.merge(&Mbr::of_cols(t.view()));
        }
        m
    }
}

/// One packed node: its MBR plus the half-open range of children it
/// covers in the level below (or in `entries` for level 0).
#[derive(Debug, Clone, Copy)]
struct NodeRec {
    mbr: Mbr,
    start: usize,
    end: usize,
}

/// The packed index. Borrows nothing: queries take the [`Database`]
/// explicitly so one tree can serve any equal-shape database is *not*
/// allowed — the tree stores the entry MBRs it was built from, and
/// refinement reads the database passed to the query, which must be the
/// one passed to [`RTree::build`].
#[derive(Debug, Clone)]
pub struct RTree {
    /// `(trajectory id, MBR)` for every non-empty trajectory, in packed
    /// (STR) order.
    entries: Vec<(usize, Mbr)>,
    /// `levels[0]` covers `entries`; `levels[l]` covers `levels[l-1]`.
    /// The last level is a single root (absent for an empty tree).
    levels: Vec<Vec<NodeRec>>,
}

/// Sorts `items` into STR order in place and returns the chunk size used
/// per tile (always [`FANOUT`]).
fn str_pack(items: &mut [(usize, Mbr)]) {
    let n = items.len();
    if n <= FANOUT {
        items.sort_by(cmp_center_x);
        return;
    }
    let leaves = n.div_ceil(FANOUT);
    let slices = (leaves as f64).sqrt().ceil() as usize;
    let slice_cap = slices.max(1) * FANOUT;
    items.sort_by(cmp_center_x);
    for chunk in items.chunks_mut(slice_cap) {
        chunk.sort_by(cmp_center_y);
    }
}

fn cmp_center_x(a: &(usize, Mbr), b: &(usize, Mbr)) -> Ordering {
    let (ax, _) = a.1.center();
    let (bx, _) = b.1.center();
    ax.total_cmp(&bx).then_with(|| a.0.cmp(&b.0))
}

fn cmp_center_y(a: &(usize, Mbr), b: &(usize, Mbr)) -> Ordering {
    let (_, ay) = a.1.center();
    let (_, by) = b.1.center();
    ay.total_cmp(&by).then_with(|| a.0.cmp(&b.0))
}

/// `f64` with a total order, for kNN heaps. Distances here are always
/// non-negative and never NaN, so `total_cmp` agrees with the naive
/// ordering; the wrapper only exists to satisfy `Ord`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl RTree {
    /// Bulk-loads the tree over every non-empty trajectory in `db`.
    pub fn build(db: &Database) -> Self {
        let mut entries: Vec<(usize, Mbr)> = (0..db.len())
            .filter(|&id| !db.cols(id).is_empty())
            .map(|id| (id, Mbr::of_cols(db.cols(id))))
            .collect();
        str_pack(&mut entries);

        let mut levels: Vec<Vec<NodeRec>> = Vec::new();
        if !entries.is_empty() {
            // Pack the leaf level over entries, then keep packing node
            // MBRs until a single root covers everything.
            let mut below: Vec<Mbr> = entries.iter().map(|&(_, m)| m).collect();
            loop {
                let mut level = Vec::with_capacity(below.len().div_ceil(FANOUT));
                let mut start = 0;
                while start < below.len() {
                    let end = (start + FANOUT).min(below.len());
                    let mut mbr = Mbr::empty();
                    for m in &below[start..end] {
                        mbr.merge(m);
                    }
                    level.push(NodeRec { mbr, start, end });
                    start = end;
                }
                let done = level.len() <= 1;
                below = level.iter().map(|n| n.mbr).collect();
                levels.push(level);
                if done {
                    break;
                }
            }
        }
        RTree { entries, levels }
    }

    /// Number of indexed (non-empty) trajectories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tree height in levels above the entry array (0 for an empty tree).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Ids of every trajectory touching the closed rectangle `r`, sorted
    /// ascending. `db` must be the database the tree was built from.
    pub fn range(&self, db: &Database, r: &Mbr) -> Vec<usize> {
        let mut out = Vec::new();
        if self.levels.is_empty() {
            return out;
        }
        // Stack of (level, node index); level == usize::MAX marks the
        // entry array.
        let top = self.levels.len() - 1;
        let mut stack: Vec<(usize, usize)> = vec![(top, 0)];
        while let Some((lvl, idx)) = stack.pop() {
            let node = self.levels[lvl][idx];
            if !node.mbr.intersects(r) {
                continue;
            }
            if lvl == 0 {
                for &(id, ref mbr) in &self.entries[node.start..node.end] {
                    if mbr.intersects(r) && traj_intersects_rect(db.cols(id), r) {
                        out.push(id);
                    }
                }
            } else {
                for child in node.start..node.end {
                    stack.push((lvl - 1, child));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Brute-force range scan over the same database: the reference
    /// answer [`RTree::range`] must equal bit for bit.
    pub fn range_scan(db: &Database, r: &Mbr) -> Vec<usize> {
        (0..db.len())
            .filter(|&id| traj_intersects_rect(db.cols(id), r))
            .collect()
    }

    /// Ids of every trajectory whose *MBR* touches `r`, sorted ascending —
    /// the range query's candidate set before segment refinement, a
    /// superset of [`RTree::range`]. A simplification keeps a subsequence
    /// of the original points, so its chords stay inside the original
    /// hull: only candidates can ever enter (or leave) the refined result
    /// under re-simplification, which is why the §17 allocator weights
    /// this set rather than the exact hits.
    pub fn range_candidates(&self, r: &Mbr) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .entries
            .iter()
            .filter(|(_, mbr)| mbr.intersects(r))
            .map(|&(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Ids of every trajectory whose MBR lower bound lies within *twice*
    /// the probe's k-th base distance, sorted ascending — the kNN
    /// candidate set, a superset of [`RTree::knn`]. A trajectory inside
    /// the base radius could intrude into a simplified top-k directly; the
    /// 2x margin additionally covers the second ring, reachable only when
    /// simplification inflates the k-th distance itself (a trajectory's
    /// exact distance is bounded below by its MBR distance, which
    /// simplification never shrinks, so everything beyond the margin is
    /// safe to compress hard).
    pub fn knn_candidates(&self, db: &Database, x: f64, y: f64, k: usize) -> Vec<usize> {
        let top = self.knn(db, x, y, k);
        let Some(&worst_id) = top.last() else {
            return Vec::new();
        };
        // Squared distances: 4x on the square is 2x on the distance.
        let reach = 4.0 * traj_dist_sq(db.cols(worst_id), x, y);
        let mut out: Vec<usize> = self
            .entries
            .iter()
            .filter(|(_, mbr)| mbr.min_dist_sq(x, y) <= reach)
            .map(|&(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` trajectories closest to `(x, y)` (minimum point-to-segment
    /// distance), ordered by `(distance, id)` ascending. Returns fewer
    /// than `k` ids when the database holds fewer non-empty trajectories.
    pub fn knn(&self, db: &Database, x: f64, y: f64, k: usize) -> Vec<usize> {
        if k == 0 || self.levels.is_empty() {
            return Vec::new();
        }
        // Best-first search: a min-heap of nodes by MBR min-dist, and a
        // max-heap of the best k exact answers seen so far. A node whose
        // min-dist exceeds the current k-th best (distance, id) cannot
        // contain a better answer; equality must still be expanded
        // because an equal-distance trajectory with a smaller id wins the
        // tie-break.
        let top = self.levels.len() - 1;
        let mut frontier: BinaryHeap<std::cmp::Reverse<(OrdF64, usize, usize)>> = BinaryHeap::new();
        frontier.push(std::cmp::Reverse((
            OrdF64(self.levels[top][0].mbr.min_dist_sq(x, y)),
            top,
            0,
        )));
        let mut best: BinaryHeap<(OrdF64, usize)> = BinaryHeap::new();
        while let Some(std::cmp::Reverse((OrdF64(nd), lvl, idx))) = frontier.pop() {
            if best.len() == k {
                let &(OrdF64(worst), _) = best.peek().expect("non-empty");
                if nd > worst {
                    break;
                }
            }
            let node = self.levels[lvl][idx];
            if lvl == 0 {
                for &(id, ref mbr) in &self.entries[node.start..node.end] {
                    if best.len() == k {
                        let &(OrdF64(worst), wid) = best.peek().expect("non-empty");
                        // (mbr lower bound, id) can't beat the worst kept.
                        let lb = mbr.min_dist_sq(x, y);
                        if lb > worst || (lb == worst && id > wid) {
                            continue;
                        }
                    }
                    let d = traj_dist_sq(db.cols(id), x, y);
                    if best.len() < k {
                        best.push((OrdF64(d), id));
                    } else {
                        let &(top_d, top_id) = best.peek().expect("non-empty");
                        if (OrdF64(d), id) < (top_d, top_id) {
                            best.pop();
                            best.push((OrdF64(d), id));
                        }
                    }
                }
            } else {
                for child in node.start..node.end {
                    let cd = self.levels[lvl - 1][child].mbr.min_dist_sq(x, y);
                    frontier.push(std::cmp::Reverse((OrdF64(cd), lvl - 1, child)));
                }
            }
        }
        let mut out: Vec<(OrdF64, usize)> = best.into_vec();
        out.sort_unstable();
        out.into_iter().map(|(_, id)| id).collect()
    }

    /// Brute-force kNN over the same database: the reference answer
    /// [`RTree::knn`] must equal bit for bit. Empty trajectories (infinite
    /// distance) are excluded, matching the tree, which never indexes
    /// them.
    pub fn knn_scan(db: &Database, x: f64, y: f64, k: usize) -> Vec<usize> {
        let mut dists: Vec<(OrdF64, usize)> = (0..db.len())
            .filter(|&id| !db.cols(id).is_empty())
            .map(|id| (OrdF64(traj_dist_sq(db.cols(id), x, y)), id))
            .collect();
        dists.sort_unstable();
        dists.truncate(k);
        dists.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_line_grid(n: usize) -> Database {
        // n horizontal two-point trajectories stacked vertically.
        let trajs: Vec<Vec<Point>> = (0..n)
            .map(|i| {
                let y = i as f64;
                vec![Point { x: 0.0, y, t: 0.0 }, Point { x: 10.0, y, t: 1.0 }]
            })
            .collect();
        Database::from_points(&trajs)
    }

    #[test]
    fn range_matches_scan_on_grid() {
        let db = db_line_grid(100);
        let tree = RTree::build(&db);
        assert_eq!(tree.len(), 100);
        for (r, label) in [
            (Mbr::new(2.0, 10.5, 3.0, 20.5), "interior band"),
            (Mbr::new(-5.0, -5.0, 15.0, 105.0), "covers all"),
            (Mbr::new(11.0, 0.0, 12.0, 99.0), "right of all"),
            (Mbr::new(0.0, 17.0, 0.0, 17.0), "degenerate on a line"),
        ] {
            assert_eq!(tree.range(&db, &r), RTree::range_scan(&db, &r), "{label}");
        }
    }

    #[test]
    fn knn_matches_scan_on_grid() {
        let db = db_line_grid(50);
        let tree = RTree::build(&db);
        for k in [1, 3, 7, 50, 60] {
            for probe in [(5.0, 12.2), (-3.0, 0.0), (20.0, 49.0)] {
                assert_eq!(
                    tree.knn(&db, probe.0, probe.1, k),
                    RTree::knn_scan(&db, probe.0, probe.1, k),
                    "k={k} probe={probe:?}"
                );
            }
        }
    }

    #[test]
    fn knn_ties_break_by_id() {
        // Two identical trajectories: equal distance, lower id first.
        let p = vec![
            Point {
                x: 0.0,
                y: 0.0,
                t: 0.0,
            },
            Point {
                x: 1.0,
                y: 0.0,
                t: 1.0,
            },
        ];
        let db = Database::from_points(&[p.clone(), p]);
        let tree = RTree::build(&db);
        assert_eq!(tree.knn(&db, 0.5, 2.0, 1), vec![0]);
        assert_eq!(tree.knn(&db, 0.5, 2.0, 2), vec![0, 1]);
    }

    #[test]
    fn empty_and_singleton_databases() {
        let empty = Database::default();
        let tree = RTree::build(&empty);
        assert!(tree.is_empty());
        assert!(tree
            .range(&empty, &Mbr::new(-1.0, -1.0, 1.0, 1.0))
            .is_empty());
        assert!(tree.knn(&empty, 0.0, 0.0, 3).is_empty());

        // A database whose only trajectory is empty indexes nothing.
        let db = Database::new(vec![TrajCols::default()]);
        let tree = RTree::build(&db);
        assert!(tree.is_empty());
        assert!(tree.knn(&db, 0.0, 0.0, 1).is_empty());
        assert_eq!(RTree::knn_scan(&db, 0.0, 0.0, 1), Vec::<usize>::new());
    }
}
