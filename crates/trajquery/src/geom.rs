//! Axis-aligned rectangles and exact segment geometry.
//!
//! Every predicate here is a pure function of its `f64` inputs with a fixed
//! evaluation order, so the R-tree's leaf refinement and the brute-force
//! scan — which call the *same* functions — agree bit for bit.

use trajectory::cols::ColsView;

/// A closed axis-aligned rectangle (minimum bounding rectangle).
///
/// An *empty* MBR (from [`Mbr::empty`]) has inverted infinite bounds and
/// intersects nothing; growing it with [`Mbr::include`] makes it valid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    /// Minimum x (inclusive).
    pub xmin: f64,
    /// Minimum y (inclusive).
    pub ymin: f64,
    /// Maximum x (inclusive).
    pub xmax: f64,
    /// Maximum y (inclusive).
    pub ymax: f64,
}

impl Mbr {
    /// The empty rectangle: inverted infinite bounds, intersects nothing.
    pub fn empty() -> Self {
        Mbr {
            xmin: f64::INFINITY,
            ymin: f64::INFINITY,
            xmax: f64::NEG_INFINITY,
            ymax: f64::NEG_INFINITY,
        }
    }

    /// A rectangle from explicit corners (no ordering check; callers pass
    /// `min <= max` or get an empty-like rect that matches nothing).
    pub fn new(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        Mbr {
            xmin,
            ymin,
            xmax,
            ymax,
        }
    }

    /// True when no point has ever been included.
    pub fn is_empty(&self) -> bool {
        self.xmin > self.xmax || self.ymin > self.ymax
    }

    /// Grows the rectangle to cover `(x, y)`.
    pub fn include(&mut self, x: f64, y: f64) {
        self.xmin = self.xmin.min(x);
        self.ymin = self.ymin.min(y);
        self.xmax = self.xmax.max(x);
        self.ymax = self.ymax.max(y);
    }

    /// Grows the rectangle to cover `other`.
    pub fn merge(&mut self, other: &Mbr) {
        self.xmin = self.xmin.min(other.xmin);
        self.ymin = self.ymin.min(other.ymin);
        self.xmax = self.xmax.max(other.xmax);
        self.ymax = self.ymax.max(other.ymax);
    }

    /// The MBR of a trajectory's spatial columns (empty for an empty view).
    pub fn of_cols(v: ColsView<'_>) -> Self {
        let mut m = Mbr::empty();
        for i in 0..v.len() {
            m.include(v.xs[i], v.ys[i]);
        }
        m
    }

    /// Closed-interval intersection test.
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// Closed-interval containment of a point.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.xmin && x <= self.xmax && y >= self.ymin && y <= self.ymax
    }

    /// Center of the rectangle (used only for STR sort keys).
    pub fn center(&self) -> (f64, f64) {
        (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))
    }

    /// Squared distance from `(x, y)` to the rectangle; `0.0` inside.
    ///
    /// This is the kNN pruning bound: it never exceeds the exact distance
    /// to any geometry contained in the rectangle.
    pub fn min_dist_sq(&self, x: f64, y: f64) -> f64 {
        let dx = if x < self.xmin {
            self.xmin - x
        } else if x > self.xmax {
            x - self.xmax
        } else {
            0.0
        };
        let dy = if y < self.ymin {
            self.ymin - y
        } else if y > self.ymax {
            y - self.ymax
        } else {
            0.0
        };
        dx * dx + dy * dy
    }
}

/// Squared distance from point `(px, py)` to segment `(ax, ay)–(bx, by)`.
///
/// Degenerate (zero-length) segments fall back to point distance. The
/// projection parameter is clamped to `[0, 1]`, so the result is the
/// distance to the closest point *on* the segment.
pub fn point_segment_dist_sq(px: f64, py: f64, ax: f64, ay: f64, bx: f64, by: f64) -> f64 {
    let dx = bx - ax;
    let dy = by - ay;
    let len_sq = dx * dx + dy * dy;
    let (cx, cy) = if len_sq > 0.0 {
        let t = (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0);
        (ax + t * dx, ay + t * dy)
    } else {
        (ax, ay)
    };
    let ex = px - cx;
    let ey = py - cy;
    ex * ex + ey * ey
}

/// True when segment `(ax, ay)–(bx, by)` touches the closed rectangle
/// (Liang–Barsky clipping; a zero-length segment degenerates to a
/// containment test).
pub fn segment_intersects_rect(r: &Mbr, ax: f64, ay: f64, bx: f64, by: f64) -> bool {
    let dx = bx - ax;
    let dy = by - ay;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    let clips = [
        (-dx, ax - r.xmin),
        (dx, r.xmax - ax),
        (-dy, ay - r.ymin),
        (dy, r.ymax - ay),
    ];
    for (p, q) in clips {
        if p == 0.0 {
            if q < 0.0 {
                return false;
            }
        } else {
            let t = q / p;
            if p < 0.0 {
                t0 = t0.max(t);
            } else {
                t1 = t1.min(t);
            }
        }
    }
    t0 <= t1
}

/// True when the trajectory in `v` touches the closed rectangle `r`:
/// any segment intersects it, or (single-point trajectory) the point lies
/// inside. Empty trajectories match nothing.
pub fn traj_intersects_rect(v: ColsView<'_>, r: &Mbr) -> bool {
    match v.len() {
        0 => false,
        1 => r.contains(v.xs[0], v.ys[0]),
        n => (0..n - 1)
            .any(|i| segment_intersects_rect(r, v.xs[i], v.ys[i], v.xs[i + 1], v.ys[i + 1])),
    }
}

/// Squared distance from `(x, y)` to the trajectory in `v`: the minimum
/// over its segments (or its sole point). Empty trajectories are
/// infinitely far.
pub fn traj_dist_sq(v: ColsView<'_>, x: f64, y: f64) -> f64 {
    match v.len() {
        0 => f64::INFINITY,
        1 => {
            let dx = x - v.xs[0];
            let dy = y - v.ys[0];
            dx * dx + dy * dy
        }
        n => {
            let mut best = f64::INFINITY;
            for i in 0..n - 1 {
                let d = point_segment_dist_sq(x, y, v.xs[i], v.ys[i], v.xs[i + 1], v.ys[i + 1]);
                best = best.min(d);
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::cols::TrajCols;

    #[test]
    fn mbr_basics() {
        let mut m = Mbr::empty();
        assert!(m.is_empty());
        m.include(1.0, 2.0);
        m.include(-1.0, 5.0);
        assert_eq!(m, Mbr::new(-1.0, 2.0, 1.0, 5.0));
        assert!(m.contains(0.0, 3.0));
        assert!(!m.contains(0.0, 1.9));
        assert_eq!(m.min_dist_sq(0.0, 3.0), 0.0);
        assert_eq!(m.min_dist_sq(2.0, 3.0), 1.0);
        assert_eq!(m.min_dist_sq(2.0, 6.0), 2.0);
    }

    #[test]
    fn empty_mbr_intersects_nothing() {
        let e = Mbr::empty();
        let u = Mbr::new(-1e9, -1e9, 1e9, 1e9);
        assert!(!e.intersects(&u));
        assert!(!u.intersects(&e));
    }

    #[test]
    fn segment_rect_cases() {
        let r = Mbr::new(0.0, 0.0, 1.0, 1.0);
        // Fully inside.
        assert!(segment_intersects_rect(&r, 0.2, 0.2, 0.8, 0.8));
        // Crossing without either endpoint inside.
        assert!(segment_intersects_rect(&r, -1.0, 0.5, 2.0, 0.5));
        // Diagonal crossing a corner region.
        assert!(segment_intersects_rect(&r, -0.5, 0.5, 0.5, 1.5));
        // Near miss past the corner.
        assert!(!segment_intersects_rect(&r, -0.5, 1.0, 0.0, 1.5));
        // Touching an edge exactly (closed semantics).
        assert!(segment_intersects_rect(&r, -1.0, 1.0, 2.0, 1.0));
        // Entirely outside.
        assert!(!segment_intersects_rect(&r, 2.0, 2.0, 3.0, 3.0));
        // Degenerate segment inside / outside.
        assert!(segment_intersects_rect(&r, 0.5, 0.5, 0.5, 0.5));
        assert!(!segment_intersects_rect(&r, 1.5, 0.5, 1.5, 0.5));
    }

    #[test]
    fn point_segment_distance() {
        // Perpendicular foot inside the segment.
        assert_eq!(point_segment_dist_sq(0.5, 1.0, 0.0, 0.0, 1.0, 0.0), 1.0);
        // Beyond the endpoint: clamps to endpoint distance.
        assert_eq!(point_segment_dist_sq(2.0, 0.0, 0.0, 0.0, 1.0, 0.0), 1.0);
        // Degenerate segment.
        assert_eq!(point_segment_dist_sq(3.0, 4.0, 0.0, 0.0, 0.0, 0.0), 25.0);
    }

    #[test]
    fn traj_predicates() {
        let t = TrajCols::from_columns(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 1.0, 2.0],
        );
        let r = Mbr::new(0.4, 0.4, 0.6, 0.6); // straddles the rising segment
        assert!(traj_intersects_rect(t.view(), &r));
        let far = Mbr::new(5.0, 5.0, 6.0, 6.0);
        assert!(!traj_intersects_rect(t.view(), &far));
        assert_eq!(traj_dist_sq(t.view(), 0.0, 0.0), 0.0);
        let empty = TrajCols::default();
        assert_eq!(traj_dist_sq(empty.view(), 0.0, 0.0), f64::INFINITY);
        assert!(!traj_intersects_rect(empty.view(), &r));
    }
}
