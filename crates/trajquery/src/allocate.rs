//! Collective, query-accuracy-driven budget allocation (DESIGN.md §17).
//!
//! Given one *global* point budget over a database of trajectories, decide
//! how many points each trajectory keeps — the objective of
//! arXiv 2311.11204 — instead of handing every trajectory the same
//! compression ratio.
//!
//! The collective arm is a **global bottom-up greedy**: every interior
//! point of every trajectory is a drop candidate priced at
//! `range_max_error::<M>(prev_kept, next_kept)` — the error introduced by
//! removing it given the *current* kept neighbors — multiplied by the
//! trajectory's query weight (1 + number of guard-workload queries that
//! touch it). One priority queue over all candidates drops the globally
//! cheapest point, repriced lazily via per-point version counters, until
//! the kept total meets the budget. Trajectories a workload queries often
//! are expensive to thin; cold trajectories absorb the compression.
//!
//! Touched trajectories additionally carry a **protective floor** equal
//! to their uniform share: the collective arm never thins a trajectory
//! the guard workload can observe below what the uniform arm would give
//! it, so the redistribution strictly moves points from query-irrelevant
//! trajectories (whose MBRs no guard query can reach — see the candidate
//! sets in [`crate::rtree::RTree`]) to observed ones. This is what makes
//! "collective ≥ uniform" robust rather than tuned: the observed part of
//! the database only ever gains points relative to the uniform split.
//!
//! The uniform arm gives every trajectory the same ratio (floored, with a
//! deterministic largest-first adjustment so the totals match exactly) and
//! runs the same greedy *within* each trajectory, unweighted.
//!
//! **Guard:** both arms are scored on the guard workload and the
//! collective result is adopted only when it is at least as accurate as
//! uniform on range F1 *and* kNN HR@k — so the public contract is
//! *strictly no worse than uniform under the guard queries*, by
//! construction. All tie-breaks are on `(cost, trajectory id, point
//! index)` and parallel sections go through order-preserving
//! [`parkit::map`], so the allocation is byte-identical at any thread
//! count.

use crate::accuracy::{evaluate, AccuracyReport};
use crate::rtree::{Database, RTree};
use crate::workload::Workload;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use trajectory::cols::{ColsView, TrajCols};
use trajectory::error::{range_max_error_cols, ErrorMeasure, Measure};

/// Allocator parameters.
#[derive(Debug, Clone, Copy)]
pub struct AllocateConfig {
    /// Global kept-point budget across all trajectories. Clamped to
    /// `[sum of floors, total points]`.
    pub global_budget: usize,
    /// Minimum kept points per non-degenerate trajectory (endpoints are
    /// always kept); values below 2 are treated as 2.
    pub min_per_traj: usize,
    /// Error measure pricing the drop candidates.
    pub measure: Measure,
    /// Worker threads for the parallel sections (seeding, scoring).
    pub threads: usize,
}

impl AllocateConfig {
    /// A config with the given budget and the defaults used by the CLI:
    /// floor 2, SED pricing, single-threaded.
    pub fn new(global_budget: usize) -> Self {
        AllocateConfig {
            global_budget,
            min_per_traj: 2,
            measure: Measure::Sed,
            threads: 1,
        }
    }
}

/// The allocator's decision: which points every trajectory keeps.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Kept original point indices per trajectory (ascending), for the
    /// adopted arm.
    pub kept: Vec<Vec<usize>>,
    /// Kept-point count per trajectory (`kept[i].len()`).
    pub budgets: Vec<usize>,
    /// The effective kept total (budget clamped to `[floors, points]`).
    pub target_total: usize,
    /// Sum of per-trajectory floors.
    pub floors_total: usize,
    /// Guard-workload query touches per trajectory (the collective arm's
    /// weights minus one).
    pub touches: Vec<u64>,
    /// True when the collective arm passed the guard and was adopted;
    /// false when it fell back to uniform.
    pub adopted_collective: bool,
    /// Guard accuracy of the collective arm.
    pub collective: AccuracyReport,
    /// Guard accuracy of the uniform arm.
    pub uniform: AccuracyReport,
}

impl Allocation {
    /// Guard accuracy of the adopted arm.
    pub fn final_accuracy(&self) -> AccuracyReport {
        if self.adopted_collective {
            self.collective
        } else {
            self.uniform
        }
    }
}

/// Extracts the kept subset of a trajectory as fresh columns.
pub fn subset_cols(v: ColsView<'_>, kept: &[usize]) -> TrajCols {
    TrajCols::from_columns(
        kept.iter().map(|&i| v.xs[i]).collect(),
        kept.iter().map(|&i| v.ys[i]).collect(),
        kept.iter().map(|&i| v.ts[i]).collect(),
    )
}

/// Per-trajectory floor: everything of a tiny trajectory, else
/// `max(2, min_per_traj)` points.
fn floor_of(len: usize, min_per_traj: usize) -> usize {
    len.min(min_per_traj.max(2))
}

/// Splits `target` total points across trajectories proportionally to
/// length, clamped to `[floors[i], lens[i]]`, with a deterministic
/// round-robin adjustment so the result sums to exactly `target`
/// (which must lie in `[Σfloors, Σlens]`).
pub fn uniform_budgets(lens: &[usize], floors: &[usize], target: usize) -> Vec<usize> {
    let total: usize = lens.iter().sum();
    if total == 0 {
        return vec![0; lens.len()];
    }
    let mut w: Vec<usize> = lens
        .iter()
        .zip(floors)
        .map(|(&n, &f)| {
            let share = (target as f64 * n as f64 / total as f64).round() as usize;
            share.clamp(f, n)
        })
        .collect();
    let mut sum: usize = w.iter().sum();
    while sum > target {
        let before = sum;
        for i in 0..w.len() {
            if sum == target {
                break;
            }
            if w[i] > floors[i] {
                w[i] -= 1;
                sum -= 1;
            }
        }
        assert!(sum < before, "uniform budgets cannot reach target {target}");
    }
    while sum < target {
        let before = sum;
        for i in 0..w.len() {
            if sum == target {
                break;
            }
            if w[i] < lens[i] {
                w[i] += 1;
                sum += 1;
            }
        }
        assert!(sum > before, "uniform budgets cannot reach target {target}");
    }
    w
}

/// Doubly-linked kept list over one trajectory's original indices.
struct KeptList {
    prev: Vec<usize>,
    next: Vec<usize>,
    alive: Vec<bool>,
    version: Vec<u32>,
    kept: usize,
}

impl KeptList {
    fn new(n: usize) -> Self {
        KeptList {
            prev: (0..n).map(|i| i.saturating_sub(1)).collect(),
            next: (0..n).map(|i| (i + 1).min(n.saturating_sub(1))).collect(),
            alive: vec![true; n],
            version: vec![0; n],
            kept: n,
        }
    }

    /// Unlinks `i`, returning its (former) neighbors.
    fn drop(&mut self, i: usize) -> (usize, usize) {
        debug_assert!(self.alive[i]);
        let (p, n) = (self.prev[i], self.next[i]);
        self.next[p] = n;
        self.prev[n] = p;
        self.alive[i] = false;
        self.version[i] = self.version[i].wrapping_add(1);
        self.kept -= 1;
        (p, n)
    }

    fn kept_indices(&self, n: usize) -> Vec<usize> {
        (0..n).filter(|&i| self.alive[i]).collect()
    }
}

/// Drops interior points of one trajectory, cheapest first, until `keep`
/// remain. The in-trajectory arm of the allocator (weight 1); also the
/// uniform baseline's per-trajectory simplifier.
fn drop_to<M: ErrorMeasure>(v: ColsView<'_>, keep: usize) -> Vec<usize> {
    let n = v.len();
    if n <= 2 || keep >= n {
        return (0..n).collect();
    }
    let keep = keep.max(2);
    let mut list = KeptList::new(n);
    let mut heap: BinaryHeap<Reverse<(u64, usize, u32)>> = BinaryHeap::new();
    let price = |s: usize, e: usize| range_max_error_cols::<M>(v, s, e).to_bits();
    for i in 1..n - 1 {
        heap.push(Reverse((price(i - 1, i + 1), i, 0)));
    }
    while list.kept > keep {
        let Reverse((_, i, ver)) = heap.pop().expect("droppable point exists");
        if !list.alive[i] || list.version[i] != ver {
            continue;
        }
        let (p, nx) = list.drop(i);
        for j in [p, nx] {
            if j > 0 && j < n - 1 && list.alive[j] {
                list.version[j] = list.version[j].wrapping_add(1);
                heap.push(Reverse((
                    price(list.prev[j], list.next[j]),
                    j,
                    list.version[j],
                )));
            }
        }
    }
    list.kept_indices(n)
}

/// Error costs are non-negative finite `f64`s; comparing their IEEE bit
/// patterns as `u64` gives the same order as `total_cmp` and makes the
/// heap key `(cost_bits, traj, idx, version)` fully integral.
fn cost_key(cost: f64, weight: f64) -> u64 {
    (cost * weight).to_bits()
}

fn collective_kept<M: ErrorMeasure>(
    db: &Database,
    floors: &[usize],
    weights: &[f64],
    target: usize,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n_trajs = db.len();
    let ids: Vec<usize> = (0..n_trajs).collect();
    // Seed candidate prices in parallel (order-preserving), push serially
    // in (traj, idx) order.
    let seeds: Vec<Vec<(u64, usize)>> = parkit::map(threads, &ids, |_, &id| {
        let v = db.cols(id);
        let n = v.len();
        if n <= 2 {
            return Vec::new();
        }
        (1..n - 1)
            .map(|i| {
                (
                    cost_key(range_max_error_cols::<M>(v, i - 1, i + 1), weights[id]),
                    i,
                )
            })
            .collect()
    });
    let mut lists: Vec<KeptList> = (0..n_trajs)
        .map(|id| KeptList::new(db.cols(id).len()))
        .collect();
    let mut total_kept: usize = lists.iter().map(|l| l.kept).sum();
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize, u32)>> = BinaryHeap::new();
    for (id, seed) in seeds.iter().enumerate() {
        for &(key, i) in seed {
            heap.push(Reverse((key, id, i, 0)));
        }
    }
    while total_kept > target {
        let Reverse((_, id, i, ver)) = heap.pop().expect("droppable point exists");
        let list = &mut lists[id];
        if !list.alive[i] || list.version[i] != ver || list.kept <= floors[id] {
            // Stale entry, or the trajectory already sits at its floor
            // (its remaining candidates stay parked in the heap and keep
            // failing this check).
            continue;
        }
        let v = db.cols(id);
        let n = v.len();
        let (p, nx) = list.drop(i);
        total_kept -= 1;
        if list.kept > floors[id] {
            for j in [p, nx] {
                if j > 0 && j < n - 1 && list.alive[j] {
                    list.version[j] = list.version[j].wrapping_add(1);
                    heap.push(Reverse((
                        cost_key(
                            range_max_error_cols::<M>(v, list.prev[j], list.next[j]),
                            weights[id],
                        ),
                        id,
                        j,
                        list.version[j],
                    )));
                }
            }
        }
    }
    lists
        .iter()
        .enumerate()
        .map(|(id, l)| l.kept_indices(db.cols(id).len()))
        .collect()
}

/// Counts, per trajectory, how many guard-workload queries *could* touch
/// it on the original database.
///
/// Touches count MBR-level candidates, not refined hits: a trajectory in
/// a query's result must keep its geometry so it stays in, but so must a
/// near-miss — a simplification can pull a candidate's chords *into* a
/// window, or move it up a kNN ranking, evicting a true answer. Weighting
/// only exact hits is precisely how false intrusions happen under tight
/// budgets. Non-candidates cannot affect any guard query (their chords
/// stay inside an MBR the query never reaches) and are safe to compress
/// hard.
fn query_touches(db: &Database, tree: &RTree, wl: &Workload, threads: usize) -> Vec<u64> {
    let range_hits: Vec<Vec<usize>> = parkit::map(threads, &wl.ranges, |_, q| {
        (tree.range(db, &q.rect), tree.range_candidates(&q.rect))
    })
    .into_iter()
    .flat_map(|(hit, cand)| [hit, cand])
    .collect();
    let knn_hits: Vec<Vec<usize>> = parkit::map(threads, &wl.probes, |_, q| {
        (
            tree.knn(db, q.x, q.y, q.k),
            tree.knn_candidates(db, q.x, q.y, q.k),
        )
    })
    .into_iter()
    .flat_map(|(hit, cand)| [hit, cand])
    .collect();
    let mut touches = vec![0u64; db.len()];
    for hits in range_hits.iter().chain(knn_hits.iter()) {
        for &id in hits {
            touches[id] += 1;
        }
    }
    touches
}

/// Runs the full allocator: collective arm, uniform arm, guard scoring,
/// fallback. See the module docs for the contract.
pub fn allocate(db: &Database, wl: &Workload, cfg: &AllocateConfig) -> Allocation {
    trajectory::dispatch!(cfg.measure, M => allocate_inner::<M>(db, wl, cfg))
}

fn allocate_inner<M: ErrorMeasure>(
    db: &Database,
    wl: &Workload,
    cfg: &AllocateConfig,
) -> Allocation {
    let n_trajs = db.len();
    let lens: Vec<usize> = (0..n_trajs).map(|id| db.cols(id).len()).collect();
    let floors: Vec<usize> = lens
        .iter()
        .map(|&n| floor_of(n, cfg.min_per_traj))
        .collect();
    let floors_total: usize = floors.iter().sum();
    let total_points: usize = lens.iter().sum();
    let target = cfg.global_budget.clamp(floors_total, total_points);

    let base_tree = RTree::build(db);
    let touches = query_touches(db, &base_tree, wl, cfg.threads);
    let weights: Vec<f64> = touches.iter().map(|&q| 1.0 + q as f64).collect();

    // Uniform arm: equal-ratio budgets, the same greedy per trajectory.
    let uniform_w = uniform_budgets(&lens, &floors, target);

    // Collective arm: one global queue, query-weighted prices, and a
    // *protective floor* — a trajectory the guard workload touches never
    // drops below its uniform share, so the redistribution only moves
    // points from provably query-irrelevant trajectories to touched ones.
    // Σ(protected floors) ≤ Σ(uniform shares) = target, so the target is
    // always feasible.
    let coll_floors: Vec<usize> = floors
        .iter()
        .zip(&uniform_w)
        .zip(&touches)
        .map(|((&f, &u), &t)| if t > 0 { f.max(u) } else { f })
        .collect();
    let collective_kept = collective_kept::<M>(db, &coll_floors, &weights, target, cfg.threads);
    let ids: Vec<usize> = (0..n_trajs).collect();
    let uniform_kept: Vec<Vec<usize>> = parkit::map(cfg.threads, &ids, |_, &id| {
        drop_to::<M>(db.cols(id), uniform_w[id])
    });

    // Guard scoring: both arms against the original, on the same workload.
    let build_db = |kept: &Vec<Vec<usize>>| {
        Database::new(
            kept.iter()
                .enumerate()
                .map(|(id, k)| subset_cols(db.cols(id), k))
                .collect(),
        )
    };
    let coll_db = build_db(&collective_kept);
    let unif_db = build_db(&uniform_kept);
    let coll_tree = RTree::build(&coll_db);
    let unif_tree = RTree::build(&unif_db);
    let collective = evaluate(db, &base_tree, &coll_db, &coll_tree, wl, cfg.threads);
    let uniform = evaluate(db, &base_tree, &unif_db, &unif_tree, wl, cfg.threads);

    let adopted_collective = collective.at_least(&uniform);
    let kept = if adopted_collective {
        collective_kept
    } else {
        uniform_kept
    };
    let budgets: Vec<usize> = kept.iter().map(|k| k.len()).collect();
    Allocation {
        kept,
        budgets,
        target_total: target,
        floors_total,
        touches,
        adopted_collective,
        collective,
        uniform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use trajectory::Point;

    fn zigzag(n: usize, y0: f64, amp: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point {
                x: i as f64,
                y: y0 + if i % 2 == 0 { 0.0 } else { amp },
                t: i as f64,
            })
            .collect()
    }

    fn test_db() -> Database {
        // Two detailed trajectories near the origin (queried) and six
        // far-away ones (cold).
        let mut trajs = vec![zigzag(60, 0.0, 1.0), zigzag(60, 3.0, 1.0)];
        for i in 0..6 {
            trajs.push(zigzag(60, 1000.0 + 10.0 * i as f64, 1.0));
        }
        Database::from_points(&trajs)
    }

    fn near_origin_workload() -> Workload {
        use crate::geom::Mbr;
        use crate::workload::{KnnQuery, RangeQuery};
        let ranges = (0..12)
            .map(|i| RangeQuery {
                rect: Mbr::new(4.0 * i as f64, -0.5, 4.0 * i as f64 + 2.0, 4.5),
            })
            .collect();
        let probes = (0..6)
            .map(|i| KnnQuery {
                x: 10.0 * i as f64,
                y: 2.0,
                k: 2,
            })
            .collect();
        Workload { ranges, probes }
    }

    #[test]
    fn budgets_respect_floors_and_total() {
        let db = test_db();
        let wl = near_origin_workload();
        let cfg = AllocateConfig {
            global_budget: 120,
            ..AllocateConfig::new(0)
        };
        let alloc = allocate(&db, &wl, &cfg);
        assert_eq!(alloc.budgets.iter().sum::<usize>(), 120);
        assert_eq!(alloc.target_total, 120);
        for (id, b) in alloc.budgets.iter().enumerate() {
            assert!(*b >= 2, "trajectory {id} below floor");
            assert!(*b <= 60);
        }
        // Kept indices are ascending and include the endpoints.
        for k in &alloc.kept {
            assert!(k.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(k[0], 0);
            assert_eq!(*k.last().unwrap(), 59);
        }
    }

    #[test]
    fn hot_trajectories_keep_more_points() {
        let db = test_db();
        let wl = near_origin_workload();
        let cfg = AllocateConfig {
            global_budget: 120,
            ..AllocateConfig::new(0)
        };
        let alloc = allocate(&db, &wl, &cfg);
        // The workload only touches trajectories 0 and 1.
        assert!(alloc.touches[0] > 0 && alloc.touches[1] > 0);
        assert!(alloc.touches[2..].iter().all(|&t| t == 0));
        if alloc.adopted_collective {
            let hot = alloc.budgets[0] + alloc.budgets[1];
            let cold_max = *alloc.budgets[2..].iter().max().unwrap();
            assert!(
                alloc.budgets[0] > cold_max && alloc.budgets[1] > cold_max,
                "queried trajectories should out-keep cold ones: {:?}",
                alloc.budgets
            );
            assert!(hot > 2 * cold_max);
        }
        // The guard holds whatever arm was adopted.
        assert!(alloc.final_accuracy().at_least(&alloc.uniform));
    }

    #[test]
    fn budget_above_total_keeps_everything() {
        let db = test_db();
        let wl = near_origin_workload();
        let cfg = AllocateConfig {
            global_budget: 1_000_000,
            ..AllocateConfig::new(0)
        };
        let alloc = allocate(&db, &wl, &cfg);
        assert_eq!(alloc.target_total, db.total_points());
        assert!(alloc
            .budgets
            .iter()
            .zip(0..)
            .all(|(&b, id)| b == db.cols(id).len()));
        assert_eq!(alloc.collective.range_f1, 1.0);
        assert_eq!(alloc.collective.knn_hr, 1.0);
    }

    #[test]
    fn thread_count_does_not_change_allocation() {
        let db = test_db();
        let wl = WorkloadSpec::default().generate(&db);
        for budget in [60, 150, 300] {
            let mk = |threads| {
                allocate(
                    &db,
                    &wl,
                    &AllocateConfig {
                        global_budget: budget,
                        threads,
                        ..AllocateConfig::new(0)
                    },
                )
            };
            let a = mk(1);
            let b = mk(4);
            assert_eq!(a.kept, b.kept, "budget {budget}");
            assert_eq!(a.adopted_collective, b.adopted_collective);
            assert_eq!(a.collective, b.collective);
            assert_eq!(a.uniform, b.uniform);
        }
    }

    #[test]
    fn uniform_budget_split_is_exact() {
        let lens = vec![10, 3, 50, 2, 1, 0];
        let floors: Vec<usize> = lens.iter().map(|&n| floor_of(n, 2)).collect();
        for target in [floors.iter().sum::<usize>(), 20, 40, 66] {
            let w = uniform_budgets(&lens, &floors, target);
            assert_eq!(w.iter().sum::<usize>(), target, "target {target}");
            for i in 0..lens.len() {
                assert!(w[i] >= floors[i] && w[i] <= lens[i]);
            }
        }
    }

    #[test]
    fn drop_to_keeps_extremes_and_count() {
        let v = TrajCols::from_points(&zigzag(31, 0.0, 2.0));
        for keep in [2, 5, 17, 31, 40] {
            let kept = drop_to::<trajectory::error::Sed>(v.view(), keep);
            assert_eq!(kept.len(), keep.clamp(2, 31));
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 30);
        }
    }
}
