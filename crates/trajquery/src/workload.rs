//! Seeded query workload generation.
//!
//! Workloads follow the evaluation setup of arXiv 2311.11204: range
//! windows and kNN probes are sampled *from the data distribution* — each
//! query centers on a point drawn uniformly from the database's points
//! (or from the hot prefix only, when [`WorkloadSpec::focus`] < 1), so
//! dense regions receive proportionally more queries, the way real
//! workloads concentrate where the data is.
//!
//! Generation is a pure function of `(database, spec)`: the only
//! randomness is an internal SplitMix64 stream seeded from
//! [`WorkloadSpec::seed`], no thread ever touches it, and
//! [`Workload::render`] exposes the exact bits of every query so tests can
//! assert byte-identical workloads across thread counts and runs.

use crate::geom::Mbr;
use crate::rtree::Database;
use std::fmt::Write as _;

/// One range query: every trajectory touching the closed window matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The query window.
    pub rect: Mbr,
}

/// One kNN probe: the `k` trajectories nearest to `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnQuery {
    /// Probe x.
    pub x: f64,
    /// Probe y.
    pub y: f64,
    /// Number of neighbors requested.
    pub k: usize,
}

/// A generated workload: the guard/evaluation query set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    /// Range windows, in generation order.
    pub ranges: Vec<RangeQuery>,
    /// kNN probes, in generation order.
    pub probes: Vec<KnnQuery>,
}

/// Parameters for workload generation. Parsed from the `--queries` CLI
/// spec (`range=64,knn=32,k=8,seed=9,side=0.02..0.10`); every field has a
/// default so partial specs work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of range windows.
    pub ranges: usize,
    /// Number of kNN probes.
    pub probes: usize,
    /// Neighbors per probe.
    pub k: usize,
    /// RNG seed; same seed → byte-identical workload.
    pub seed: u64,
    /// Window side, as a fraction of the data extent: lower bound.
    pub side_min: f64,
    /// Window side, as a fraction of the data extent: upper bound.
    pub side_max: f64,
    /// Hot fraction of the database queries concentrate on, in `(0, 1]`.
    /// Query centers are sampled from the first `ceil(focus · n)`
    /// trajectories only — the skewed-workload case where collective
    /// budget allocation pays (real workloads hammer downtown, not the
    /// whole map). `1.0` (the default) is the unskewed workload.
    pub focus: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ranges: 64,
            probes: 32,
            k: 8,
            seed: 9,
            side_min: 0.02,
            side_max: 0.10,
            focus: 1.0,
        }
    }
}

impl WorkloadSpec {
    /// Parses a comma-separated `key=value` spec. Unknown keys are an
    /// error; omitted keys keep their defaults.
    ///
    /// Keys: `range` (count), `knn` (count), `k`, `seed`,
    /// `side` (`LO..HI` extent fractions), `focus` (hot fraction of the
    /// database queries concentrate on, in `(0, 1]`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = WorkloadSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad workload spec item {part:?}: expected key=value"))?;
            match key {
                "range" => {
                    spec.ranges = val
                        .parse()
                        .map_err(|_| format!("bad range count {val:?}"))?
                }
                "knn" => spec.probes = val.parse().map_err(|_| format!("bad knn count {val:?}"))?,
                "k" => spec.k = val.parse().map_err(|_| format!("bad k {val:?}"))?,
                "seed" => spec.seed = val.parse().map_err(|_| format!("bad seed {val:?}"))?,
                "side" => {
                    let (lo, hi) = val
                        .split_once("..")
                        .ok_or_else(|| format!("bad side range {val:?}: expected LO..HI"))?;
                    spec.side_min = lo.parse().map_err(|_| format!("bad side lo {lo:?}"))?;
                    spec.side_max = hi.parse().map_err(|_| format!("bad side hi {hi:?}"))?;
                    if !(spec.side_min > 0.0 && spec.side_max >= spec.side_min) {
                        return Err(format!("side range {val:?} must satisfy 0 < LO <= HI"));
                    }
                }
                "focus" => {
                    spec.focus = val.parse().map_err(|_| format!("bad focus {val:?}"))?;
                    if !(spec.focus > 0.0 && spec.focus <= 1.0) {
                        return Err(format!("focus {val:?} must lie in (0, 1]"));
                    }
                }
                _ => return Err(format!("unknown workload spec key {key:?}")),
            }
        }
        if spec.k == 0 {
            return Err("k must be >= 1".to_string());
        }
        Ok(spec)
    }

    /// Canonical `key=value` rendering (inverse of [`WorkloadSpec::parse`]
    /// for reports).
    pub fn render(&self) -> String {
        format!(
            "range={},knn={},k={},seed={},side={:?}..{:?},focus={:?}",
            self.ranges, self.probes, self.k, self.seed, self.side_min, self.side_max, self.focus
        )
    }

    /// Generates the workload over `db`. Deterministic: a pure function of
    /// `(db, self)`. An empty database yields an empty workload.
    pub fn generate(&self, db: &Database) -> Workload {
        let total = db.total_points();
        if total == 0 {
            return Workload::default();
        }
        // Prefix sums over the hot prefix (`focus` fraction of the
        // trajectories, all of them at focus 1.0) so a uniform draw lands
        // on a concrete (trajectory, point). Note the *extent* below stays
        // the whole database's: window sizes don't shrink with focus.
        let hot = ((self.focus * db.len() as f64).ceil() as usize).clamp(1, db.len());
        let mut cum = Vec::with_capacity(hot + 1);
        cum.push(0usize);
        for id in 0..hot {
            cum.push(cum[id] + db.cols(id).len());
        }
        let total = *cum.last().expect("nonempty prefix sums");
        if total == 0 {
            return Workload::default();
        }
        let extent = db.extent();
        let ew = (extent.xmax - extent.xmin).max(f64::MIN_POSITIVE);
        let eh = (extent.ymax - extent.ymin).max(f64::MIN_POSITIVE);

        let mut rng = SplitMix64::new(self.seed);
        let sample_point = |rng: &mut SplitMix64| -> (f64, f64) {
            let flat = rng.below(total as u64) as usize;
            // partition_point: first id with cum[id+1] > flat.
            let id = cum.partition_point(|&c| c <= flat) - 1;
            let v = db.cols(id);
            let off = flat - cum[id];
            (v.xs[off], v.ys[off])
        };

        let mut ranges = Vec::with_capacity(self.ranges);
        for _ in 0..self.ranges {
            let (cx, cy) = sample_point(&mut rng);
            let frac = self.side_min + (self.side_max - self.side_min) * rng.f64();
            let hw = 0.5 * frac * ew;
            let hh = 0.5 * frac * eh;
            ranges.push(RangeQuery {
                rect: Mbr::new(cx - hw, cy - hh, cx + hw, cy + hh),
            });
        }
        let mut probes = Vec::with_capacity(self.probes);
        for _ in 0..self.probes {
            let (cx, cy) = sample_point(&mut rng);
            // Offset the probe off the sampled point so kNN is not a
            // trivial zero-distance lookup on the original data.
            let dx = (rng.f64() - 0.5) * self.side_min * ew;
            let dy = (rng.f64() - 0.5) * self.side_min * eh;
            probes.push(KnnQuery {
                x: cx + dx,
                y: cy + dy,
                k: self.k,
            });
        }
        Workload { ranges, probes }
    }
}

impl Workload {
    /// Total query count.
    pub fn len(&self) -> usize {
        self.ranges.len() + self.probes.len()
    }

    /// True when the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.probes.is_empty()
    }

    /// Renders every query's exact bits, one line per query — the
    /// byte-identity artifact for seed-invariance tests and CI `cmp`s.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, q) in self.ranges.iter().enumerate() {
            let r = q.rect;
            let _ = writeln!(
                s,
                "range[{i}] x={:016x}..{:016x} y={:016x}..{:016x}",
                r.xmin.to_bits(),
                r.xmax.to_bits(),
                r.ymin.to_bits(),
                r.ymax.to_bits()
            );
        }
        for (i, q) in self.probes.iter().enumerate() {
            let _ = writeln!(
                s,
                "knn[{i}] x={:016x} y={:016x} k={}",
                q.x.to_bits(),
                q.y.to_bits(),
                q.k
            );
        }
        s
    }
}

/// SplitMix64 (Steele et al.): the same minimal generator the rest of the
/// repo uses for deterministic seeding. Private on purpose — workload
/// generation is the only consumer, and keeping it here means trajquery
/// stays zero-dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. Modulo bias is irrelevant at workload sizes.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn small_db() -> Database {
        let trajs: Vec<Vec<Point>> = (0..8)
            .map(|i| {
                (0..20)
                    .map(|j| Point {
                        x: j as f64,
                        y: (i * j) as f64 * 0.1,
                        t: j as f64,
                    })
                    .collect()
            })
            .collect();
        Database::from_points(&trajs)
    }

    #[test]
    fn parse_roundtrip_and_defaults() {
        let spec =
            WorkloadSpec::parse("range=10,knn=4,k=3,seed=77,side=0.01..0.5,focus=0.25").unwrap();
        assert_eq!(
            spec,
            WorkloadSpec {
                ranges: 10,
                probes: 4,
                k: 3,
                seed: 77,
                side_min: 0.01,
                side_max: 0.5,
                focus: 0.25
            }
        );
        assert_eq!(WorkloadSpec::parse(spec.render().as_str()).unwrap(), spec);
        assert_eq!(WorkloadSpec::parse("").unwrap(), WorkloadSpec::default());
        assert!(WorkloadSpec::parse("bogus=1").is_err());
        assert!(WorkloadSpec::parse("k=0").is_err());
        assert!(WorkloadSpec::parse("side=0.5..0.1").is_err());
        assert!(WorkloadSpec::parse("focus=0").is_err());
        assert!(WorkloadSpec::parse("focus=1.5").is_err());
    }

    #[test]
    fn same_seed_same_bytes() {
        let db = small_db();
        let spec = WorkloadSpec::default();
        let a = spec.generate(&db);
        let b = spec.generate(&db);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.len(), spec.ranges + spec.probes);
        let other = WorkloadSpec { seed: 10, ..spec };
        assert_ne!(other.generate(&db).render(), a.render());
    }

    #[test]
    fn focused_workload_samples_only_hot_trajectories() {
        // small_db: trajectory i spans y in [0, 1.9·i]. focus=0.25 over 8
        // trajectories → centers come from trajectories 0 and 1 only
        // (y ≤ 1.9); probes may drift off-center by half a minimum side.
        let db = small_db();
        let spec = WorkloadSpec {
            focus: 0.25,
            ..WorkloadSpec::default()
        };
        let wl = spec.generate(&db);
        let ext = db.extent();
        let eh = ext.ymax - ext.ymin;
        for q in &wl.ranges {
            let cy = 0.5 * (q.rect.ymin + q.rect.ymax);
            assert!(cy <= 1.9 + 1e-9, "range center {cy} outside hot prefix");
        }
        for q in &wl.probes {
            assert!(q.y <= 1.9 + 0.5 * spec.side_min * eh + 1e-9);
        }
        assert_eq!(WorkloadSpec::parse(spec.render().as_str()).unwrap(), spec);
    }

    #[test]
    fn empty_database_empty_workload() {
        let wl = WorkloadSpec::default().generate(&Database::default());
        assert!(wl.is_empty());
        assert_eq!(wl.render(), "");
    }

    #[test]
    fn windows_cover_data_points() {
        // Every range window is centered on a data point, so the center
        // point's trajectory must match the window.
        let db = small_db();
        let wl = WorkloadSpec::default().generate(&db);
        for q in &wl.ranges {
            assert!(
                !crate::rtree::RTree::range_scan(&db, &q.rect).is_empty(),
                "window centered on a data point matched nothing"
            );
        }
    }
}
