//! Spatial query layer over trajectory databases (DESIGN.md §17).
//!
//! The source paper (RLTS, ICDE 2021) simplifies each trajectory against a
//! per-trajectory budget; its follow-up ("Collectively Simplifying
//! Trajectories in a Database: A Query Accuracy Driven Approach",
//! arXiv 2311.11204) argues the production objective is different: one
//! *global* storage budget over a whole database, allocated so that spatial
//! **query** accuracy — not per-trajectory SED/PED — is maximized. This
//! crate supplies the three pieces that objective needs:
//!
//! 1. [`rtree`] — a bulk-loaded STR-packed R-tree over trajectory MBRs
//!    with per-entry refinement down to segment level. Range and kNN
//!    answers are **bit-identical** to a brute-force scan (proptest-gated):
//!    the tree only prunes, the leaf refinement runs the same exact
//!    geometry as the scan.
//! 2. [`workload`] + [`accuracy`] — a seeded generator for range-window
//!    and kNN-probe workloads sampled from the data distribution, and the
//!    simplified-vs-original accuracy metrics (range F1, kNN HR@k) used to
//!    score a simplification against a workload.
//! 3. [`mod@allocate`] — the collective budget allocator: a global bottom-up
//!    greedy that spends one point budget across all trajectories by
//!    marginal error, weighted by how often guard queries touch each
//!    trajectory, with a strictly-no-worse-than-uniform fallback guard.
//!
//! Everything here is deterministic: no wall clock, no ambient RNG, no
//! iteration over hash maps in output paths. Parallelism goes through
//! [`parkit::map`], which preserves item order, so every public function
//! returns byte-identical results at any thread count.

#![warn(missing_docs)]

pub mod accuracy;
pub mod allocate;
pub mod geom;
#[cfg(test)]
mod proptests;
pub mod rtree;
pub mod workload;

pub use accuracy::{evaluate, AccuracyReport};
pub use allocate::{allocate, uniform_budgets, AllocateConfig, Allocation};
pub use geom::Mbr;
pub use rtree::{Database, RTree};
pub use workload::{KnnQuery, RangeQuery, Workload, WorkloadSpec};
