//! Query-accuracy metrics: how faithfully a simplified database answers a
//! workload compared to the original.
//!
//! Two metrics, matching the evaluation in arXiv 2311.11204:
//!
//! - **Range F1** — per range window, the F1 score of the simplified
//!   result set against the original result set, averaged over windows.
//!   Both-empty counts as a perfect 1.0 (the simplified store gave the
//!   exactly-right answer: nothing).
//! - **kNN HR@k** — per probe, the fraction of the original top-k ids
//!   recovered in the simplified top-k, averaged over probes.
//!
//! Per-query work fans out through [`parkit::map`] (order-preserving), and
//! the aggregation is a fixed-order serial fold, so the report is
//! byte-identical at any thread count.

use crate::rtree::{Database, RTree};
use crate::workload::Workload;

/// The accuracy of one simplified database against one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Mean range-query F1 (1.0 when the workload has no range queries).
    pub range_f1: f64,
    /// Mean kNN hit ratio at k (1.0 when the workload has no probes).
    pub knn_hr: f64,
    /// Number of range queries evaluated.
    pub ranges: usize,
    /// Number of kNN probes evaluated.
    pub probes: usize,
}

impl AccuracyReport {
    /// True when this report is at least as accurate as `other` on both
    /// metrics (the allocator's no-worse-than-uniform guard).
    pub fn at_least(&self, other: &AccuracyReport) -> bool {
        self.range_f1 >= other.range_f1 && self.knn_hr >= other.knn_hr
    }
}

/// Size of the intersection of two ascending-sorted id lists.
fn sorted_intersection(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// F1 of a simplified result set against the original result set.
fn f1(base: &[usize], simp: &[usize]) -> f64 {
    if base.is_empty() && simp.is_empty() {
        return 1.0;
    }
    if base.is_empty() || simp.is_empty() {
        return 0.0;
    }
    let hit = sorted_intersection(base, simp) as f64;
    // 2·|∩| / (|base| + |simp|) is algebraically 2PR/(P+R) and avoids the
    // 0/0 branch.
    2.0 * hit / (base.len() + simp.len()) as f64
}

/// Evaluates `simp` against `base` on `wl`. The two databases must be
/// id-aligned (trajectory `i` in `simp` is the simplification of
/// trajectory `i` in `base`); `base_tree`/`simp_tree` must be built from
/// the respective databases.
pub fn evaluate(
    base: &Database,
    base_tree: &RTree,
    simp: &Database,
    simp_tree: &RTree,
    wl: &Workload,
    threads: usize,
) -> AccuracyReport {
    assert_eq!(
        base.len(),
        simp.len(),
        "accuracy databases must be id-aligned"
    );
    let range_scores: Vec<f64> = parkit::map(threads, &wl.ranges, |_, q| {
        let b = base_tree.range(base, &q.rect);
        let s = simp_tree.range(simp, &q.rect);
        f1(&b, &s)
    });
    let knn_scores: Vec<f64> = parkit::map(threads, &wl.probes, |_, q| {
        let mut b = base_tree.knn(base, q.x, q.y, q.k);
        let mut s = simp_tree.knn(simp, q.x, q.y, q.k);
        b.sort_unstable();
        s.sort_unstable();
        if b.is_empty() {
            return 1.0;
        }
        sorted_intersection(&b, &s) as f64 / b.len() as f64
    });
    let mean = |v: &[f64]| {
        if v.is_empty() {
            1.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    AccuracyReport {
        range_f1: mean(&range_scores),
        knn_hr: mean(&knn_scores),
        ranges: wl.ranges.len(),
        probes: wl.probes.len(),
    }
}

/// Convenience: builds both trees, then calls [`evaluate`].
pub fn evaluate_built(
    base: &Database,
    simp: &Database,
    wl: &Workload,
    threads: usize,
) -> AccuracyReport {
    let bt = RTree::build(base);
    let st = RTree::build(simp);
    evaluate(base, &bt, simp, &st, wl, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Mbr;
    use crate::workload::{KnnQuery, RangeQuery};
    use trajectory::Point;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point { x, y, t: i as f64 })
            .collect()
    }

    #[test]
    fn identical_databases_score_one() {
        let db = Database::from_points(&[
            pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]),
            pts(&[(5.0, 5.0), (6.0, 6.0)]),
        ]);
        let wl = Workload {
            ranges: vec![RangeQuery {
                rect: Mbr::new(0.0, 0.0, 10.0, 10.0),
            }],
            probes: vec![KnnQuery {
                x: 1.0,
                y: 1.0,
                k: 2,
            }],
        };
        let rep = evaluate_built(&db, &db, &wl, 1);
        assert_eq!(rep.range_f1, 1.0);
        assert_eq!(rep.knn_hr, 1.0);
        assert!(rep.at_least(&rep));
    }

    #[test]
    fn degraded_simplification_scores_below_one() {
        // Original has a detour that the "simplification" removes
        // entirely, so a window over the detour misses trajectory 0.
        let base = Database::from_points(&[
            pts(&[(0.0, 0.0), (5.0, 10.0), (10.0, 0.0)]),
            pts(&[(0.0, 20.0), (10.0, 20.0)]),
        ]);
        let simp = Database::from_points(&[
            pts(&[(0.0, 0.0), (10.0, 0.0)]),
            pts(&[(0.0, 20.0), (10.0, 20.0)]),
        ]);
        let wl = Workload {
            ranges: vec![
                RangeQuery {
                    rect: Mbr::new(4.0, 8.0, 6.0, 12.0), // detour only
                },
                RangeQuery {
                    rect: Mbr::new(-1.0, -1.0, 11.0, 21.0), // everything
                },
            ],
            probes: vec![KnnQuery {
                x: 5.0,
                y: 9.0,
                k: 1,
            }],
        };
        let rep = evaluate_built(&base, &simp, &wl, 1);
        // First window: base={0}, simp={} → 0. Second: both {0,1} → 1.
        assert_eq!(rep.range_f1, 0.5);
        // Probe near the detour: base picks 0; simp also picks 0 (still
        // nearest even flattened) → HR stays 1.
        assert_eq!(rep.knn_hr, 1.0);
        let perfect = evaluate_built(&base, &base, &wl, 1);
        assert!(perfect.at_least(&rep));
        assert!(!rep.at_least(&perfect));
    }

    #[test]
    fn empty_workload_scores_one() {
        let db = Database::from_points(&[pts(&[(0.0, 0.0), (1.0, 0.0)])]);
        let rep = evaluate_built(&db, &db, &Workload::default(), 1);
        assert_eq!(rep.range_f1, 1.0);
        assert_eq!(rep.knn_hr, 1.0);
    }
}
