//! `rlts allocate` — collective, query-accuracy-driven budget allocation
//! over a columnar segment store (DESIGN.md §17).
//!
//! Where `rlts resimplify` tightens every entry *at its stored budget*,
//! this pass re-decides the budgets themselves: given one global point
//! budget over every trajectory in the store, it runs
//! [`trajquery::allocate`] to redistribute points toward the trajectories
//! a guard query workload actually touches, and (optionally) writes a
//! mirrored store whose kept columns reflect the new allocation.
//!
//! # Contract
//!
//! * **Strictly no worse than uniform.** The collective allocation is
//!   adopted only when it scores at least as well as the equal-ratio
//!   uniform split on both range F1 and kNN HR@k over the guard workload;
//!   otherwise the uniform allocation is written. The report records both
//!   arms and which one won.
//! * **Thread-count invariant.** The allocator, the workload generator,
//!   and the store writer are all deterministic; the report and any
//!   mirrored store are byte-identical at any `--threads` (CI `cmp`s
//!   them).
//! * **Best-available base.** Entries with archived raw columns are
//!   allocated against the raw stream; kept-only entries are allocated
//!   against their stored online result (the best original available).
//!   Quarantined entries are dropped from the mirror and counted, as in
//!   `rlts resimplify`.

use crate::storeio::read_store;
use crate::trajectory::error::Measure;
use crate::trajectory::TrajCols;
use crate::trajstore::ColSegWriter;
use std::path::PathBuf;
use trajquery::allocate::{allocate, subset_cols, AllocateConfig};
use trajquery::rtree::Database;
use trajquery::workload::WorkloadSpec;

/// What one allocation pass runs with.
#[derive(Debug, Clone)]
pub struct AllocateCliConfig {
    /// Columnar segment store to read.
    pub input: PathBuf,
    /// Optional mirrored store for the reallocated kept columns (raw
    /// columns are preserved; file names mirror the input's).
    pub output: Option<PathBuf>,
    /// Global kept-point budget across every entry in the store.
    pub budget: usize,
    /// Guard workload spec (see [`WorkloadSpec::parse`]; empty =
    /// defaults).
    pub queries: String,
    /// Error measure pricing the allocator's drop candidates.
    pub measure: Measure,
    /// Worker threads (`0` = all cores). Outputs are byte-identical at
    /// any value.
    pub threads: usize,
}

impl Default for AllocateCliConfig {
    fn default() -> Self {
        AllocateCliConfig {
            input: PathBuf::new(),
            output: None,
            budget: 0,
            queries: String::new(),
            measure: Measure::Sed,
            threads: 0,
        }
    }
}

/// What an allocation pass decided; see [`AllocateReport::to_json`].
#[derive(Debug, Clone)]
pub struct AllocateReport {
    /// Canonical guard workload spec.
    pub spec: String,
    /// Guard measure pricing the drops.
    pub measure: Measure,
    /// Segments read / skipped, as in `rlts resimplify`.
    pub segments_read: usize,
    /// Segment files skipped whole (corrupt header/footer).
    pub segments_skipped: usize,
    /// Entries allocated over.
    pub entries: usize,
    /// Entries dropped because a column failed its CRC.
    pub entries_quarantined: usize,
    /// Total points across the allocation base (raw where archived,
    /// online kept otherwise).
    pub base_points: usize,
    /// The requested global budget.
    pub budget: usize,
    /// The effective kept total after clamping to `[floors, points]`.
    pub target_total: usize,
    /// True when the collective arm passed the guard and was adopted.
    pub adopted_collective: bool,
    /// Guard accuracy: collective arm `(range_f1, knn_hr)`.
    pub collective: (f64, f64),
    /// Guard accuracy: uniform arm `(range_f1, knn_hr)`.
    pub uniform: (f64, f64),
    /// Smallest / largest per-entry budget the adopted arm assigned.
    pub budget_min: usize,
    /// See [`AllocateReport::budget_min`].
    pub budget_max: usize,
}

impl AllocateReport {
    /// Deterministic JSON rendering: no timestamps, no wall clock, fixed
    /// key order — byte-comparable across runs and thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"queries\": \"{}\",\n", self.spec));
        s.push_str(&format!("  \"measure\": \"{}\",\n", self.measure.name()));
        s.push_str(&format!("  \"segments_read\": {},\n", self.segments_read));
        s.push_str(&format!(
            "  \"segments_skipped\": {},\n",
            self.segments_skipped
        ));
        s.push_str(&format!("  \"entries\": {},\n", self.entries));
        s.push_str(&format!(
            "  \"entries_quarantined\": {},\n",
            self.entries_quarantined
        ));
        s.push_str(&format!("  \"base_points\": {},\n", self.base_points));
        s.push_str(&format!("  \"budget\": {},\n", self.budget));
        s.push_str(&format!("  \"target_total\": {},\n", self.target_total));
        s.push_str(&format!(
            "  \"adopted\": \"{}\",\n",
            if self.adopted_collective {
                "collective"
            } else {
                "uniform"
            }
        ));
        s.push_str(&format!(
            "  \"collective\": {{\"range_f1\": {:?}, \"knn_hr\": {:?}}},\n",
            self.collective.0, self.collective.1
        ));
        s.push_str(&format!(
            "  \"uniform\": {{\"range_f1\": {:?}, \"knn_hr\": {:?}}},\n",
            self.uniform.0, self.uniform.1
        ));
        s.push_str(&format!("  \"budget_min\": {},\n", self.budget_min));
        s.push_str(&format!("  \"budget_max\": {}\n", self.budget_max));
        s.push_str("}\n");
        s
    }
}

/// Runs the pass: read → allocate → (optionally) mirrored write.
pub fn run(cfg: &AllocateCliConfig) -> Result<AllocateReport, String> {
    let spec = WorkloadSpec::parse(&cfg.queries).map_err(|e| format!("bad --queries spec: {e}"))?;
    let (segments, skipped) = read_store(&cfg.input)?;

    // Flatten to (segment, entry) in deterministic store order; the
    // allocator's trajectory ids are positions in this flattening.
    let items: Vec<(usize, usize)> = segments
        .iter()
        .enumerate()
        .flat_map(|(s, seg)| (0..seg.entries.len()).map(move |e| (s, e)))
        .collect();
    let base: Vec<TrajCols> = items
        .iter()
        .map(|&(s, e)| {
            let entry = &segments[s].entries[e];
            entry.raw.clone().unwrap_or_else(|| entry.kept.clone())
        })
        .collect();
    let db = Database::new(base);
    let wl = spec.generate(&db);
    let alloc = allocate(
        &db,
        &wl,
        &AllocateConfig {
            global_budget: cfg.budget,
            min_per_traj: 2,
            measure: cfg.measure,
            threads: cfg.threads,
        },
    );

    let report = AllocateReport {
        spec: spec.render(),
        measure: cfg.measure,
        segments_read: segments.len(),
        segments_skipped: skipped,
        entries: items.len(),
        entries_quarantined: segments.iter().map(|s| s.quarantined).sum(),
        base_points: db.total_points(),
        budget: cfg.budget,
        target_total: alloc.target_total,
        adopted_collective: alloc.adopted_collective,
        collective: (alloc.collective.range_f1, alloc.collective.knn_hr),
        uniform: (alloc.uniform.range_f1, alloc.uniform.knn_hr),
        budget_min: alloc.budgets.iter().copied().min().unwrap_or(0),
        budget_max: alloc.budgets.iter().copied().max().unwrap_or(0),
    };

    if let Some(out_dir) = &cfg.output {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
        let mut flat = 0usize;
        for (s, seg) in segments.iter().enumerate() {
            let mut writer = ColSegWriter::new(&seg.dataset, seg.version);
            for (e, entry) in seg.entries.iter().enumerate() {
                debug_assert_eq!(items[flat], (s, e));
                let mut out = entry.clone();
                out.kept = subset_cols(db.cols(flat), &alloc.kept[flat]);
                out.w = alloc.budgets[flat] as u32;
                writer.push(&out);
                flat += 1;
            }
            writer
                .seal(&out_dir.join(&seg.file_name))
                .map_err(|e| format!("cannot seal {}: {e}", seg.file_name))?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_stable() {
        let rep = AllocateReport {
            spec: "range=2,knn=1,k=4,seed=9,side=0.02..0.1".into(),
            measure: Measure::Sed,
            segments_read: 1,
            segments_skipped: 0,
            entries: 3,
            entries_quarantined: 0,
            base_points: 300,
            budget: 90,
            target_total: 90,
            adopted_collective: true,
            collective: (0.9, 0.8),
            uniform: (0.85, 0.8),
            budget_min: 2,
            budget_max: 60,
        };
        let a = rep.to_json();
        assert_eq!(a, rep.to_json());
        assert!(a.contains("\"adopted\": \"collective\""));
        assert!(a.contains("\"budget\": 90"));
    }

    #[test]
    fn missing_store_is_an_error() {
        let cfg = AllocateCliConfig {
            input: PathBuf::from("/nonexistent/store"),
            budget: 100,
            ..AllocateCliConfig::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn bad_spec_is_an_error() {
        let cfg = AllocateCliConfig {
            queries: "bogus=1".into(),
            ..AllocateCliConfig::default()
        };
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("bad --queries spec"), "{err}");
    }
}
