//! Shared colseg-store ingestion for the offline CLI passes.
//!
//! `rlts resimplify` and `rlts allocate` both start the same way: scan a
//! store directory in sorted file-name order, decode every segment, and
//! quarantine entries whose columns fail their CRC instead of aborting.
//! This module is that common front half; the passes differ only in what
//! they do with the decoded entries.

use crate::trajstore::{ColRole, ColSegEntry, ColSegReader, ColStore};
use std::path::{Path, PathBuf};

/// One readable input segment, fully decoded.
pub(crate) struct SegmentData {
    /// The segment's file name (outputs mirror it).
    pub file_name: String,
    /// Dataset label recorded in the segment header.
    pub dataset: String,
    /// Format version recorded in the segment header.
    pub version: u32,
    /// Entries whose columns all passed their CRC.
    pub entries: Vec<ColSegEntry>,
    /// Entries dropped because a column failed its CRC.
    pub quarantined: usize,
}

/// Reads every entry of one segment, quarantining entries whose columns
/// fail their CRC.
pub(crate) fn read_segment(path: &Path) -> Result<SegmentData, String> {
    let mut reader = ColSegReader::open(path).map_err(|e| e.to_string())?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| "segment path has no file name".to_string())?
        .to_string();
    let mut data = SegmentData {
        file_name,
        dataset: reader.dataset().to_string(),
        version: reader.version(),
        entries: Vec::with_capacity(reader.len()),
        quarantined: 0,
    };
    for i in 0..reader.len() {
        let meta = reader.entries()[i].clone();
        let kept = match reader.read_cols(i, ColRole::Kept) {
            Ok(cols) => cols,
            Err(_) => {
                data.quarantined += 1;
                continue;
            }
        };
        let raw = if meta.raw_len.is_some() {
            match reader.read_cols(i, ColRole::Raw) {
                Ok(cols) => Some(cols),
                Err(_) => {
                    data.quarantined += 1;
                    continue;
                }
            }
        } else {
            None
        };
        data.entries.push(ColSegEntry {
            id: meta.id,
            tenant: meta.tenant,
            policy_version: meta.policy_version,
            w: meta.w,
            reason: meta.reason,
            degraded: meta.degraded,
            observed: meta.observed,
            delivered_at: meta.delivered_at,
            kept,
            raw,
        });
    }
    Ok(data)
}

/// Scans a store directory and decodes every readable segment, in sorted
/// file-name order. Returns the decoded segments plus the count of
/// segment files skipped whole (corrupt header/footer). `Err` only when
/// the directory itself cannot be scanned or holds no segments at all.
pub(crate) fn read_store(input: &PathBuf) -> Result<(Vec<SegmentData>, usize), String> {
    let paths = ColStore::segment_paths(input)
        .map_err(|e| format!("cannot scan {}: {e}", input.display()))?;
    if paths.is_empty() {
        return Err(format!("no .colseg segments under {}", input.display()));
    }
    let mut segments = Vec::new();
    let mut skipped = 0usize;
    for path in &paths {
        match read_segment(path) {
            Ok(seg) => segments.push(seg),
            Err(_) => skipped += 1,
        }
    }
    Ok((segments, skipped))
}
