//! # rlts — Trajectory Simplification with Reinforcement Learning
//!
//! A complete Rust implementation of *Trajectory Simplification with
//! Reinforcement Learning* (Zheng Wang, Cheng Long, Gao Cong — ICDE 2021),
//! including every substrate the paper depends on:
//!
//! * [`trajectory`] — the data model: spatio-temporal points, validated
//!   trajectories, the four error measures (SED / PED / DAD / SAD) under
//!   anchor-segment semantics, incremental error bookkeeping, CSV/binary
//!   I/O, and dataset statistics;
//! * [`rlkit`] — a from-scratch deep-RL substrate: a softmax policy network
//!   (dense → batch-norm → tanh → dense) with hand-written backprop, Adam,
//!   and REINFORCE-with-baseline;
//! * [`baselines`] — all comparison algorithms: STTrace, SQUISH, SQUISH-E
//!   (online); Bellman exact DP, Top-Down, Bottom-Up, Span-Search (batch);
//! * [`core`](rlts_core) — the six RLTS variants (RLTS, RLTS-Skip, RLTS+,
//!   RLTS-Skip+, RLTS++, RLTS-Skip++), their MDP environments, and the
//!   training harness;
//! * [`trajgen`] — seeded synthetic workloads calibrated to the paper's
//!   Geolife / T-Drive / Trucks datasets;
//! * [`obskit`] — the zero-dependency observability toolkit every layer
//!   reports into (see DESIGN.md §9 and `rlts metrics`);
//! * [`parkit`] — the zero-dependency scoped-thread parallel layer behind
//!   episode collection, the evaluation grid, and the fleet loss sweep
//!   (see DESIGN.md §10 and the `--threads` flag on `rlts` / `repro`);
//! * [`trajserve`] — the multi-tenant streaming simplification service:
//!   session lifecycle with idle-TTL eviction, tiered admission control,
//!   versioned policy checkpoints with atomic hot-swap, and a sharded
//!   worker pool (see DESIGN.md §12 and `rlts serve`);
//! * [`trajcache`] — the zero-dependency memoization cache (LRU / TLRU /
//!   ARC eviction, byte + entry bounds) behind the error-kernel range
//!   memos, policy forward-pass caching, and the serve-layer window memo
//!   (see DESIGN.md §14 and `--cache` on `rlts train` / `rlts serve`);
//! * [`trajquery`] — the spatial query layer: an STR-packed R-tree over
//!   trajectory MBRs, seeded range/kNN query workloads with
//!   simplified-vs-original accuracy metrics, and the collective
//!   query-accuracy-driven budget allocator (see DESIGN.md §17 and
//!   `rlts allocate`).
//!
//! ## Quick start
//!
//! ```
//! use rlts::prelude::*;
//!
//! // A trajectory from the Geolife-like generator.
//! let traj = rlts::trajgen::generate(Preset::GeolifeLike, 200, 42);
//!
//! // Train a small online policy and simplify down to 10% of the points.
//! let pool = rlts::trajgen::generate_dataset(Preset::GeolifeLike, 8, 150, 1);
//! let cfg = RltsConfig::paper_defaults(Variant::Rlts, Measure::Sed);
//! let mut tc = TrainConfig::quick(cfg);
//! tc.epochs = 2; // doc-test budget; use more in practice
//! let report = rlts::train(&pool, &tc);
//!
//! let mut algo = RltsOnline::new(
//!     cfg,
//!     DecisionPolicy::Learned { net: report.policy.net, greedy: false },
//!     7,
//! );
//! let kept = algo.run(traj.points(), 20);
//! assert!(kept.len() <= 20);
//!
//! // Score the result.
//! let err = simplification_error(Measure::Sed, traj.points(), &kept, Aggregation::Max);
//! assert!(err.is_finite());
//! ```
//!
//! See `examples/` for end-to-end scenarios (streaming sensor, server-side
//! compaction, measure comparison) and the `rlts-bench` crate for the
//! harness regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use baselines;
pub use obskit;
pub use parkit;
pub use rlkit;
pub use rlts_core;
pub use sensornet;
pub use trajcache;
pub use trajectory;
pub use trajgen;
pub use trajquery;
pub use trajserve;
pub use trajstore;

pub use rlts_core::{
    train, DecisionPolicy, RltsBatch, RltsConfig, RltsOnline, SimplifyEnv, TrainConfig,
    TrainReport, TrainedPolicy, ValueUpdate, Variant,
};

pub mod allocate;
pub mod resimplify;
mod storeio;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::rlts_core::{
        train, DecisionPolicy, RltsBatch, RltsConfig, RltsOnline, TrainConfig, TrainedPolicy,
        ValueUpdate, Variant,
    };
    pub use crate::trajectory::error::{
        drop_error, segment_error, simplification_error, Aggregation, Measure,
    };
    // `Simplifier` is deliberately not re-exported here: its `simplify`
    // method would make every `BatchSimplifier::simplify` call ambiguous
    // under a glob import. Budget-polymorphic code imports it explicitly
    // (`use rlts::trajectory::Simplifier;`).
    pub use crate::trajectory::{
        BatchSimplifier, Budget, CloneOnlineSimplifier, ErrorBook, OnlineSimplifier, Point,
        Segment, Simplification, Trajectory,
    };
    pub use crate::trajgen::Preset;
    pub use baselines::{
        Bellman, BottomUp, SpanSearch, Squish, SquishE, StTrace, TopDown, Uniform,
    };
}
