//! Offline re-simplification of a columnar segment store (DESIGN.md §16).
//!
//! `rlts serve --col-store DIR` seals every tick's closed/evicted outputs
//! into seekable columnar segments: the online simplification (kept
//! columns) and, when the session's bounded archive held it, the raw
//! stream it came from. Online algorithms decide under streaming
//! constraints — one pass, bounded window — so their outputs leave error
//! on the table that a batch algorithm seeing the whole trajectory can
//! recover. This module is that second pass: it streams a store's entries
//! through a batch simplifier under the same point budget `w` the online
//! run used, scores both simplifications under all four error measures,
//! and writes mirrored segments holding whichever result is better.
//!
//! # Contract
//!
//! * **Strictly no worse.** The batch result replaces the stored online
//!   result only when its maximum error under the guard measure
//!   ([`ResimplifyConfig::measure`]) is at most the online error;
//!   otherwise the stored points are retained. Every output entry is
//!   therefore no worse than its input under the guard, by construction.
//! * **Thread-count invariant.** Entries are processed via an
//!   order-preserving [`parkit::map`] and segments are written in sorted
//!   file-name order, so the output directory is byte-identical at any
//!   [`ResimplifyConfig::threads`].
//! * **Quarantine, not panic.** Unreadable segments are skipped and
//!   entries whose columns fail their CRC are dropped from the mirror;
//!   both are counted in the report. Damage never aborts the run.
//! * **Kept-only entries pass through.** An entry without raw columns
//!   (archive overflowed, or the session predates the store) cannot be
//!   re-simplified — its online result is already the best available and
//!   is copied through unchanged.

use crate::storeio::read_store;
use crate::trajectory::error::{trajectory_error_cols, Aggregation, Dad, Measure, Ped, Sad, Sed};
use crate::trajectory::{Budget, Point, Simplifier, TrajCols};
use crate::trajstore::{ColSegEntry, ColSegWriter};
use baselines::{Bellman, BottomUp, TopDown, Uniform};
use std::path::PathBuf;
use trajquery::accuracy::evaluate_built;
use trajquery::rtree::Database;
use trajquery::workload::WorkloadSpec;

/// What one re-simplification pass runs with.
#[derive(Debug, Clone)]
pub struct ResimplifyConfig {
    /// Columnar segment store to read (`rlts serve --col-store` output).
    pub input: PathBuf,
    /// Directory the mirrored, tightened segments are written into
    /// (created if missing; file names mirror the input's).
    pub output: PathBuf,
    /// Batch algorithm: `bottom-up` | `top-down` | `bellman` | `uniform`.
    pub algo: String,
    /// Guard measure: the batch result is adopted only when its maximum
    /// error under this measure does not exceed the stored online one.
    pub measure: Measure,
    /// Worker threads for the per-entry map (`0` = all cores). Outputs
    /// are byte-identical at any value.
    pub threads: usize,
    /// Query workload spec scoring the pass the way arXiv 2311.11204
    /// evaluates (range F1 / kNN HR@k over the compared entries; see
    /// [`WorkloadSpec::parse`]). Empty = defaults, `"off"` = skip the
    /// query-accuracy section.
    pub queries: String,
}

impl Default for ResimplifyConfig {
    fn default() -> Self {
        ResimplifyConfig {
            input: PathBuf::new(),
            output: PathBuf::new(),
            algo: "bottom-up".into(),
            measure: Measure::Sed,
            threads: 0,
            queries: String::new(),
        }
    }
}

/// Query accuracy of the online and re-simplified results against the raw
/// streams, over the compared entries.
#[derive(Debug, Clone)]
pub struct QueryAccuracySection {
    /// Canonical workload spec that was evaluated.
    pub spec: String,
    /// Compared entries the workload ran over.
    pub entries: usize,
    /// Range F1 of the stored online simplifications.
    pub online_range_f1: f64,
    /// kNN HR@k of the stored online simplifications.
    pub online_knn_hr: f64,
    /// Range F1 of the written (re-simplified) entries.
    pub resimplified_range_f1: f64,
    /// kNN HR@k of the written (re-simplified) entries.
    pub resimplified_knn_hr: f64,
}

/// Per-measure error tightening over the compared entries.
#[derive(Debug, Clone, Copy)]
pub struct MeasureTightening {
    /// The measure scored.
    pub measure: Measure,
    /// Mean (over compared entries) of the maximum error of the stored
    /// online simplification against its raw stream.
    pub online_mean_max: f64,
    /// Same statistic for the entries actually written (batch where
    /// adopted, online where retained). Never worse than the online
    /// figure under the guard measure.
    pub resimplified_mean_max: f64,
}

/// What a re-simplification pass did; see [`ResimplifyReport::to_json`].
#[derive(Debug, Clone, Default)]
pub struct ResimplifyReport {
    /// Batch algorithm that ran.
    pub algo: String,
    /// Guard measure the keep-better rule used.
    pub guard: Option<Measure>,
    /// Segments opened successfully.
    pub segments_read: usize,
    /// Segments written into the output directory.
    pub segments_written: usize,
    /// Segment files that failed to open (corrupt header/footer) and were
    /// skipped whole.
    pub segments_skipped: usize,
    /// Entries visited across all readable segments.
    pub entries: usize,
    /// Entries dropped because a column failed its CRC.
    pub entries_quarantined: usize,
    /// Entries with full raw columns that were re-simplified and scored.
    pub compared: usize,
    /// Compared entries where the batch result was adopted.
    pub adopted: usize,
    /// Compared entries where the stored online result was retained.
    pub retained: usize,
    /// Entries copied through unchanged for lack of raw columns.
    pub kept_only: usize,
    /// Per-measure tightening over the compared entries (all four
    /// measures, in SED/PED/DAD/SAD order).
    pub measures: Vec<MeasureTightening>,
    /// Query-accuracy scoring of the compared entries (`None` when
    /// disabled or nothing was comparable).
    pub queries: Option<QueryAccuracySection>,
}

impl ResimplifyReport {
    /// Deterministic JSON rendering: no timestamps, no wall clock, fixed
    /// key order — byte-comparable across runs and thread counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"algo\": \"{}\",\n", self.algo));
        s.push_str(&format!(
            "  \"guard_measure\": \"{}\",\n",
            self.guard.map(|m| m.name()).unwrap_or("none")
        ));
        s.push_str(&format!("  \"segments_read\": {},\n", self.segments_read));
        s.push_str(&format!(
            "  \"segments_written\": {},\n",
            self.segments_written
        ));
        s.push_str(&format!(
            "  \"segments_skipped\": {},\n",
            self.segments_skipped
        ));
        s.push_str(&format!("  \"entries\": {},\n", self.entries));
        s.push_str(&format!(
            "  \"entries_quarantined\": {},\n",
            self.entries_quarantined
        ));
        s.push_str(&format!("  \"compared\": {},\n", self.compared));
        s.push_str(&format!("  \"adopted\": {},\n", self.adopted));
        s.push_str(&format!("  \"retained\": {},\n", self.retained));
        s.push_str(&format!("  \"kept_only\": {},\n", self.kept_only));
        s.push_str("  \"measures\": [\n");
        for (i, m) in self.measures.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"measure\": \"{}\", \"online_mean_max\": {:?}, \
                 \"resimplified_mean_max\": {:?}}}{}\n",
                m.measure.name(),
                m.online_mean_max,
                m.resimplified_mean_max,
                if i + 1 < self.measures.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        match &self.queries {
            Some(q) => {
                s.push_str("  \"queries\": {\n");
                s.push_str(&format!("    \"spec\": \"{}\",\n", q.spec));
                s.push_str(&format!("    \"entries\": {},\n", q.entries));
                s.push_str(&format!(
                    "    \"online_range_f1\": {:?},\n",
                    q.online_range_f1
                ));
                s.push_str(&format!("    \"online_knn_hr\": {:?},\n", q.online_knn_hr));
                s.push_str(&format!(
                    "    \"resimplified_range_f1\": {:?},\n",
                    q.resimplified_range_f1
                ));
                s.push_str(&format!(
                    "    \"resimplified_knn_hr\": {:?}\n",
                    q.resimplified_knn_hr
                ));
                s.push_str("  }\n");
            }
            None => s.push_str("  \"queries\": null\n"),
        }
        s.push_str("}\n");
        s
    }
}

/// Builds the batch simplifier by CLI name; `Err` lists the valid names.
pub fn batch_algo(name: &str, measure: Measure) -> Result<Box<dyn Simplifier>, String> {
    match name {
        "bottom-up" => Ok(Box::new(BottomUp::new(measure))),
        "top-down" => Ok(Box::new(TopDown::new(measure))),
        "bellman" => Ok(Box::new(Bellman::new(measure))),
        "uniform" => Ok(Box::new(Uniform::new())),
        other => Err(format!(
            "unknown batch algorithm '{other}' (bottom-up | top-down | bellman | uniform)"
        )),
    }
}

/// Maximum error of the simplification `kept` (indices into `cols`) under
/// `measure`, dispatched to the SoA kernels.
fn max_error_cols(measure: Measure, cols: &TrajCols, kept: &[usize]) -> f64 {
    let v = cols.view();
    match measure {
        Measure::Sed => trajectory_error_cols::<Sed>(v, kept, Aggregation::Max),
        Measure::Ped => trajectory_error_cols::<Ped>(v, kept, Aggregation::Max),
        Measure::Dad => trajectory_error_cols::<Dad>(v, kept, Aggregation::Max),
        Measure::Sad => trajectory_error_cols::<Sad>(v, kept, Aggregation::Max),
    }
}

/// Locates each stored kept point inside the raw stream by bit pattern,
/// in order. Online simplifiers keep a subset of what they observe, so a
/// complete archive always matches; `None` means the entry's raw and kept
/// columns disagree (or the output is not anchored) and the entry cannot
/// be scored.
fn kept_indices_in_raw(raw: &TrajCols, kept: &TrajCols) -> Option<Vec<usize>> {
    let (rx, ry, rt) = (raw.xs(), raw.ys(), raw.ts());
    let (kx, ky, kt) = (kept.xs(), kept.ys(), kept.ts());
    let mut idx = Vec::with_capacity(kt.len());
    let mut at = 0usize;
    for i in 0..kt.len() {
        let mut found = None;
        while at < rt.len() {
            let here = at;
            at += 1;
            if rx[here].to_bits() == kx[i].to_bits()
                && ry[here].to_bits() == ky[i].to_bits()
                && rt[here].to_bits() == kt[i].to_bits()
            {
                found = Some(here);
                break;
            }
        }
        idx.push(found?);
    }
    (idx.first() == Some(&0) && idx.last() == Some(&(rt.len() - 1))).then_some(idx)
}

/// What processing one entry produced.
struct EntryOutcome {
    /// The entry to write (final kept columns; raw preserved).
    entry: ColSegEntry,
    /// `(online, final)` max errors per measure, for compared entries.
    scores: Option<([f64; 4], [f64; 4])>,
    /// Whether the batch result was adopted.
    adopted: bool,
}

/// Re-simplifies one entry under the keep-better guard. Entries that
/// cannot be scored (no raw, too short, raw/kept mismatch) pass through
/// unchanged with `scores: None`.
fn process_entry(entry: &ColSegEntry, algo: &dyn Simplifier, guard: Measure) -> EntryOutcome {
    let passthrough = |e: &ColSegEntry| EntryOutcome {
        entry: e.clone(),
        scores: None,
        adopted: false,
    };
    let Some(raw) = &entry.raw else {
        return passthrough(entry);
    };
    if raw.len() < 3 || entry.kept.len() < 2 {
        return passthrough(entry);
    }
    let Some(online_idx) = kept_indices_in_raw(raw, &entry.kept) else {
        return passthrough(entry);
    };
    // Same budget the online run delivered under: the comparison is
    // tightening at equal size, never tightening by keeping more.
    let w = entry.kept.len().max(2);
    let raw_pts: Vec<Point> = raw.to_points();
    let batch_idx = algo.simplify(&raw_pts, Budget::Points(w)).kept;

    let online_scores: [f64; 4] = Measure::ALL.map(|m| max_error_cols(m, raw, &online_idx));
    let batch_scores: [f64; 4] = Measure::ALL.map(|m| max_error_cols(m, raw, &batch_idx));
    let gi = Measure::ALL.iter().position(|m| *m == guard).unwrap_or(0);
    let adopted = batch_scores[gi] <= online_scores[gi];
    let (final_idx, final_scores) = if adopted {
        (&batch_idx, batch_scores)
    } else {
        (&online_idx, online_scores)
    };
    let kept_pts: Vec<Point> = final_idx.iter().map(|&i| raw_pts[i]).collect();
    let mut out = entry.clone();
    out.kept = TrajCols::from_points(&kept_pts);
    EntryOutcome {
        entry: out,
        scores: Some((online_scores, final_scores)),
        adopted,
    }
}

/// Scores the compared entries' online and re-simplified results against
/// their raw streams on a seeded query workload. Returns `Ok(None)` when
/// disabled (`spec == "off"`) or nothing was comparable.
fn score_queries(
    spec: &str,
    trajs: &[(TrajCols, TrajCols, TrajCols)],
    threads: usize,
) -> Result<Option<QueryAccuracySection>, String> {
    if spec == "off" || trajs.is_empty() {
        return Ok(None);
    }
    let spec = WorkloadSpec::parse(spec).map_err(|e| format!("bad --queries spec: {e}"))?;
    let base = Database::new(trajs.iter().map(|(r, _, _)| r.clone()).collect());
    let online = Database::new(trajs.iter().map(|(_, o, _)| o.clone()).collect());
    let resim = Database::new(trajs.iter().map(|(_, _, f)| f.clone()).collect());
    let wl = spec.generate(&base);
    let on = evaluate_built(&base, &online, &wl, threads);
    let re = evaluate_built(&base, &resim, &wl, threads);
    Ok(Some(QueryAccuracySection {
        spec: spec.render(),
        entries: trajs.len(),
        online_range_f1: on.range_f1,
        online_knn_hr: on.knn_hr,
        resimplified_range_f1: re.range_f1,
        resimplified_knn_hr: re.knn_hr,
    }))
}

/// Runs the pass: read → parallel re-simplify → mirrored write.
pub fn run(cfg: &ResimplifyConfig) -> Result<ResimplifyReport, String> {
    let algo = batch_algo(&cfg.algo, cfg.measure)?;
    if cfg.queries != "off" {
        // Surface a bad workload spec before the heavy pass runs.
        WorkloadSpec::parse(&cfg.queries).map_err(|e| format!("bad --queries spec: {e}"))?;
    }
    let mut report = ResimplifyReport {
        algo: cfg.algo.clone(),
        guard: Some(cfg.measure),
        ..ResimplifyReport::default()
    };

    let (segments, skipped) = read_store(&cfg.input)?;
    report.segments_skipped = skipped;
    for seg in &segments {
        report.segments_read += 1;
        report.entries += seg.entries.len() + seg.quarantined;
        report.entries_quarantined += seg.quarantined;
    }

    // Flatten to one work item per entry so a segment with many entries
    // still spreads across the pool; parkit::map preserves order.
    let items: Vec<(usize, usize)> = segments
        .iter()
        .enumerate()
        .flat_map(|(s, seg)| (0..seg.entries.len()).map(move |e| (s, e)))
        .collect();
    let outcomes = parkit::map(cfg.threads, &items, |_, &(s, e)| {
        process_entry(&segments[s].entries[e], algo.as_ref(), cfg.measure)
    });

    let mut online_sums = [0.0f64; 4];
    let mut final_sums = [0.0f64; 4];
    let mut by_segment: Vec<Vec<ColSegEntry>> = segments
        .iter()
        .map(|s| Vec::with_capacity(s.entries.len()))
        .collect();
    // Compared entries' (raw, online kept, final kept) columns, in item
    // order, for the query-accuracy scoring below.
    let mut query_trajs: Vec<(TrajCols, TrajCols, TrajCols)> = Vec::new();
    for (&(s, e), outcome) in items.iter().zip(outcomes) {
        match outcome.scores {
            Some((online, fin)) => {
                report.compared += 1;
                if outcome.adopted {
                    report.adopted += 1;
                } else {
                    report.retained += 1;
                }
                for i in 0..4 {
                    online_sums[i] += online[i];
                    final_sums[i] += fin[i];
                }
                if let Some(raw) = &outcome.entry.raw {
                    query_trajs.push((
                        raw.clone(),
                        segments[s].entries[e].kept.clone(),
                        outcome.entry.kept.clone(),
                    ));
                }
            }
            None => report.kept_only += 1,
        }
        by_segment[s].push(outcome.entry);
    }
    report.queries = score_queries(&cfg.queries, &query_trajs, cfg.threads)?;
    let n = report.compared.max(1) as f64;
    report.measures = Measure::ALL
        .iter()
        .enumerate()
        .map(|(i, &measure)| MeasureTightening {
            measure,
            online_mean_max: online_sums[i] / n,
            resimplified_mean_max: final_sums[i] / n,
        })
        .collect();

    std::fs::create_dir_all(&cfg.output)
        .map_err(|e| format!("cannot create {}: {e}", cfg.output.display()))?;
    for (seg, entries) in segments.iter().zip(by_segment) {
        let mut writer = ColSegWriter::new(&seg.dataset, seg.version);
        for e in &entries {
            writer.push(e);
        }
        writer
            .seal(&cfg.output.join(&seg.file_name))
            .map_err(|e| format!("cannot seal {}: {e}", seg.file_name))?;
        report.segments_written += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(pts: &[(f64, f64, f64)]) -> TrajCols {
        TrajCols::from_points(
            &pts.iter()
                .map(|&(x, y, t)| Point::new(x, y, t))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn kept_indices_match_bit_patterns_in_order() {
        let raw = cols(&[
            (0.0, 0.0, 0.0),
            (1.0, 5.0, 1.0),
            (2.0, 0.0, 2.0),
            (3.0, 5.0, 3.0),
            (4.0, 0.0, 4.0),
        ]);
        let kept = cols(&[(0.0, 0.0, 0.0), (2.0, 0.0, 2.0), (4.0, 0.0, 4.0)]);
        assert_eq!(kept_indices_in_raw(&raw, &kept), Some(vec![0, 2, 4]));
    }

    #[test]
    fn unanchored_or_foreign_kept_points_fail_to_match() {
        let raw = cols(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 2.0)]);
        // Not anchored at the last raw point.
        let kept = cols(&[(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)]);
        assert_eq!(kept_indices_in_raw(&raw, &kept), None);
        // A point the raw stream never contained.
        let foreign = cols(&[(0.0, 0.0, 0.0), (9.0, 9.0, 1.5), (2.0, 0.0, 2.0)]);
        assert_eq!(kept_indices_in_raw(&raw, &foreign), None);
    }

    #[test]
    fn guard_never_lets_the_result_get_worse() {
        // A spike off uniform's evenly spaced grid (it picks 0, 4, 8 for
        // nine points at w = 3): the entry stores a good online pick, and
        // re-simplifying under a worse batch algorithm must retain it.
        let raw_pts: Vec<Point> = (0..9)
            .map(|i| Point::new(i as f64, if i == 2 { 8.0 } else { 0.0 }, i as f64))
            .collect();
        let raw = TrajCols::from_points(&raw_pts);
        let kept = TrajCols::from_points(&[raw_pts[0], raw_pts[2], raw_pts[8]]);
        let entry = ColSegEntry {
            id: 1,
            tenant: 0,
            policy_version: 0,
            w: 3,
            reason: 0,
            degraded: false,
            observed: 9,
            delivered_at: 5,
            kept,
            raw: Some(raw.clone()),
        };
        let algo = batch_algo("uniform", Measure::Sed).unwrap();
        let out = process_entry(&entry, algo.as_ref(), Measure::Sed);
        let (online, fin) = out.scores.expect("entry is comparable");
        assert!(fin[0] <= online[0], "guard violated: {fin:?} vs {online:?}");
        // The stored pick keeps the spike, so uniform cannot beat it.
        assert!(!out.adopted);
        assert_eq!(out.entry.kept.len(), 3);

        // Bottom-up sees the whole trajectory and must do at least as
        // well as any stored result under the same budget.
        let algo = batch_algo("bottom-up", Measure::Sed).unwrap();
        let out = process_entry(&entry, algo.as_ref(), Measure::Sed);
        let (online, fin) = out.scores.expect("entry is comparable");
        assert!(fin[0] <= online[0]);
    }

    #[test]
    fn entries_without_raw_pass_through() {
        let entry = ColSegEntry {
            id: 2,
            tenant: 1,
            policy_version: 3,
            w: 4,
            reason: 1,
            degraded: true,
            observed: 50,
            delivered_at: 9,
            kept: cols(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]),
            raw: None,
        };
        let algo = batch_algo("bottom-up", Measure::Sed).unwrap();
        let out = process_entry(&entry, algo.as_ref(), Measure::Sed);
        assert!(out.scores.is_none());
        assert!(!out.adopted);
        assert_eq!(out.entry.kept.len(), 2);
        assert_eq!(out.entry.id, 2);
    }

    #[test]
    fn unknown_algo_is_a_typed_error() {
        assert!(batch_algo("squish", Measure::Sed).is_err());
        assert!(batch_algo("bottom-up", Measure::Ped).is_ok());
    }
}
