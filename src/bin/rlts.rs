//! `rlts` — command-line trajectory simplification.
//!
//! ```text
//! rlts stats     <file...>                          dataset statistics
//! rlts train     [options] --out policy.json        train a policy
//! rlts simplify  [options] <in> [-o out.csv]        simplify one file
//! rlts eval      [options] <file...>                compare algorithms
//! rlts metrics   [options] [-o metrics.jsonl]       telemetry smoke run
//! rlts serve     --soak [options]                   many-tenant soak
//! rlts serve     --listen ADDR [options]            network shard server
//! rlts route     --listen ADDR --shards A,B,...     shard router
//! rlts resimplify --in DIR --out DIR [options]      batch-tighten a store
//! rlts allocate  --in DIR --budget N [options]      collective budget split
//!
//! common options:
//!   --measure sed|ped|dad|sad      error measure            [sed]
//!   --format csv|plt|tdrive        input format             [by extension]
//!   --ratio F                      keep F·n points          [0.1]
//!   --w N                          keep exactly N points    (overrides ratio)
//!   --threads N                    episode-collection workers, 0 = all
//!                                  cores; results identical at any N  [0]
//!
//! train options:
//!   --variant rlts|rlts-skip|rlts+|rlts-skip+|rlts++|rlts-skip++   [rlts]
//!   --synthetic geolife|tdrive|truck   train on generated data [geolife]
//!   --count N --len N --epochs N       training size            [30 250 30]
//!   --cache                        memoize error-kernel range stats
//!                                  (bit-identical results, DESIGN.md §14)
//!
//! simplify options:
//!   --algo rlts|rlts-skip|rlts+|rlts-skip+|rlts++|rlts-skip++|
//!          sttrace|squish|squish-e|top-down|bottom-up|bellman|uniform
//!   --policy FILE                  trained policy JSON (RLTS algos)
//!
//! metrics options:
//!   --epochs N --count N --len N   size of the smoke run       [4 4 60]
//!   --out FILE                     also write the JSONL snapshot
//!
//! serve options:
//!   --soak                         run the synthetic many-tenant soak
//!   --sessions N --tenants N       soak population            [500 10]
//!   --len N                        points per session          [120]
//!   --drop F                       uplink drop probability     [0.05]
//!   --ttl N                        idle-TTL in ticks           [12]
//!   --swap-mid                     hot-swap a policy checkpoint mid-soak
//!   --journal-dir DIR              journal session ops for crash recovery
//!   --group-commit N               journal fsync interval in ticks [1]
//!   --snapshot-every N             journal snapshot interval, 0 = off [64]
//!   --crash-at N                   crash at tick N, recover, continue
//!   --crash-corrupt torn|truncate|bitflip   damage the journal pre-recovery
//!   --cache                        enable the serve-layer memo caches
//!                                  (outputs stay byte-identical; see
//!                                  DESIGN.md §14)
//!   --cache-bytes N               per-tenant cache budget in bytes [262144]
//!   --cache-policy lru|tlru[:ttl]|arc   eviction policy           [lru]
//!   --route-pool N                 distinct trajgen routes sessions replay
//!                                  (0 = one route per session)       [8]
//!   --bench-cache FILE             run the soak cache-off then cache-on,
//!                                  assert identical outputs, write the
//!                                  hit-rate/latency comparison as JSON
//!   --bench-net FILE               run the soak in-process then over a
//!                                  loopback TCP server, assert identical
//!                                  outputs, write the throughput/latency
//!                                  comparison as JSON
//!   --out FILE                     write delivered outputs (deterministic,
//!                                  logical-clock only — byte-comparable
//!                                  across crashed and uncrashed runs)
//!   --col-store DIR                additionally seal closed/evicted outputs
//!                                  into columnar segments under DIR
//!                                  (DESIGN.md §16); feeds `rlts resimplify`
//!   --global-budget N              cross-tenant budget pool: per-tenant
//!                                  session budgets are derived from one
//!                                  global per-session pool by observed
//!                                  demand, hot-reloadable like policy
//!                                  checkpoints (DESIGN.md §17)
//!
//! network serve options (DESIGN.md §15):
//!   --listen ADDR                  run one shard as a TCP server speaking
//!                                  the rlts wire protocol; the soak sizing
//!                                  flags above derive the service config,
//!                                  so pass the driver's flags verbatim
//!   --recover                      rebuild shard state from --journal-dir
//!                                  before listening (crash restart)
//!   --connect ADDR                 drive the soak against a remote shard
//!                                  or router instead of in-process
//!   --shutdown                     after a --connect soak, ask the remote
//!                                  server to exit
//!
//! route options:
//!   --listen ADDR                  router bind address
//!   --shards A,B,...               shard addresses; session id % N picks
//!                                  the shard
//!
//! resimplify options (DESIGN.md §16):
//!   --in DIR                       columnar store written by
//!                                  `rlts serve --col-store`
//!   --out DIR                      mirrored output store (same file names;
//!                                  byte-identical at any --threads)
//!   --algo bottom-up|top-down|bellman|uniform   batch algorithm [bottom-up]
//!   --measure sed|ped|dad|sad      guard measure: the batch result is kept
//!                                  only when no worse than the stored
//!                                  online one under it              [sed]
//!   --report FILE                  write the deterministic JSON report
//!   --queries SPEC                 query workload scoring the pass
//!                                  (range=N,knn=N,k=N,seed=N,side=LO..HI;
//!                                  "off" disables)       [defaults]
//!
//! allocate options (DESIGN.md §17):
//!   --in DIR                       columnar store written by
//!                                  `rlts serve --col-store`
//!   --budget N                     global kept-point budget across every
//!                                  entry in the store
//!   --queries SPEC                 guard workload (syntax as above); the
//!                                  collective allocation must beat the
//!                                  uniform split on it or uniform wins
//!   --out DIR                      mirrored store with reallocated kept
//!                                  columns (byte-identical at any
//!                                  --threads)
//!   --measure sed|ped|dad|sad      drop-candidate pricing measure   [sed]
//!   --report FILE                  write the deterministic JSON report
//! ```
//!
//! `rlts metrics` exercises every instrumented subsystem (training,
//! simplifiers, sensornet uplink, timed stages) with a small synthetic
//! workload, then dumps the global metric registry as a table — the
//! quickest way to see the telemetry contract of DESIGN.md §9 in action.

use rlts::prelude::*;
use rlts::{train, DecisionPolicy, TrainConfig, TrainedPolicy};
use std::fs::File;
use std::path::Path;
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `rlts help` for usage");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        help();
        exit(2)
    };
    let opts = CliOpts::parse(&args[1..]);
    match cmd.as_str() {
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "simplify" => cmd_simplify(&opts),
        "eval" => cmd_eval(&opts),
        "metrics" => cmd_metrics(&opts),
        "serve" => cmd_serve(&opts),
        "route" => cmd_route(&opts),
        "resimplify" => cmd_resimplify(&opts),
        "allocate" => cmd_allocate(&opts),
        "help" | "--help" | "-h" => help(),
        other => die(&format!("unknown command '{other}'")),
    }
}

fn help() {
    println!(
        "rlts — trajectory simplification with reinforcement learning\n\n\
         usage: rlts <stats|train|simplify|eval|metrics|serve|route|resimplify|allocate|help> [options] [files...]\n\
         see the crate documentation (src/bin/rlts.rs) for all options"
    );
}

#[derive(Default)]
struct CliOpts {
    files: Vec<String>,
    measure: Option<Measure>,
    format: Option<String>,
    ratio: Option<f64>,
    w: Option<usize>,
    variant: Option<String>,
    algo: Option<String>,
    policy: Option<String>,
    out: Option<String>,
    synthetic: Option<String>,
    count: Option<usize>,
    len: Option<usize>,
    epochs: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    sessions: Option<usize>,
    tenants: Option<usize>,
    drop: Option<f64>,
    ttl: Option<u64>,
    swap_mid: bool,
    soak: bool,
    journal_dir: Option<String>,
    group_commit: Option<u64>,
    snapshot_every: Option<u64>,
    crash_at: Option<u64>,
    crash_corrupt: Option<String>,
    cache: bool,
    cache_bytes: Option<usize>,
    cache_policy: Option<String>,
    route_pool: Option<usize>,
    bench_cache: Option<String>,
    bench_net: Option<String>,
    listen: Option<String>,
    connect: Option<String>,
    shards: Option<String>,
    recover: bool,
    shutdown: bool,
    col_store: Option<String>,
    in_dir: Option<String>,
    report: Option<String>,
    budget: Option<usize>,
    queries: Option<String>,
    global_budget: Option<usize>,
}

impl CliOpts {
    fn parse(args: &[String]) -> CliOpts {
        let mut o = CliOpts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| die(&format!("{name} needs a value")))
                    .clone()
            };
            match a.as_str() {
                "--measure" => {
                    let v = val("--measure");
                    o.measure = Some(
                        Measure::parse(&v)
                            .unwrap_or_else(|| die(&format!("unknown measure '{v}'"))),
                    )
                }
                "--format" => o.format = Some(val("--format")),
                "--ratio" => {
                    o.ratio = Some(
                        val("--ratio")
                            .parse()
                            .unwrap_or_else(|_| die("bad --ratio")),
                    )
                }
                "--w" => o.w = Some(val("--w").parse().unwrap_or_else(|_| die("bad --w"))),
                "--variant" => o.variant = Some(val("--variant")),
                "--algo" => o.algo = Some(val("--algo")),
                "--policy" => o.policy = Some(val("--policy")),
                "--out" | "-o" => o.out = Some(val("--out")),
                "--synthetic" => o.synthetic = Some(val("--synthetic")),
                "--count" => {
                    o.count = Some(
                        val("--count")
                            .parse()
                            .unwrap_or_else(|_| die("bad --count")),
                    )
                }
                "--len" => o.len = Some(val("--len").parse().unwrap_or_else(|_| die("bad --len"))),
                "--epochs" => {
                    o.epochs = Some(
                        val("--epochs")
                            .parse()
                            .unwrap_or_else(|_| die("bad --epochs")),
                    )
                }
                "--seed" => {
                    o.seed = Some(val("--seed").parse().unwrap_or_else(|_| die("bad --seed")))
                }
                "--threads" => {
                    o.threads = Some(
                        val("--threads")
                            .parse()
                            .unwrap_or_else(|_| die("bad --threads")),
                    )
                }
                "--sessions" => {
                    o.sessions = Some(
                        val("--sessions")
                            .parse()
                            .unwrap_or_else(|_| die("bad --sessions")),
                    )
                }
                "--tenants" => {
                    o.tenants = Some(
                        val("--tenants")
                            .parse()
                            .unwrap_or_else(|_| die("bad --tenants")),
                    )
                }
                "--drop" => {
                    o.drop = Some(val("--drop").parse().unwrap_or_else(|_| die("bad --drop")))
                }
                "--ttl" => o.ttl = Some(val("--ttl").parse().unwrap_or_else(|_| die("bad --ttl"))),
                "--swap-mid" => o.swap_mid = true,
                "--soak" => o.soak = true,
                "--journal-dir" => o.journal_dir = Some(val("--journal-dir")),
                "--group-commit" => {
                    o.group_commit = Some(
                        val("--group-commit")
                            .parse()
                            .unwrap_or_else(|_| die("bad --group-commit")),
                    )
                }
                "--snapshot-every" => {
                    o.snapshot_every = Some(
                        val("--snapshot-every")
                            .parse()
                            .unwrap_or_else(|_| die("bad --snapshot-every")),
                    )
                }
                "--crash-at" => {
                    o.crash_at = Some(
                        val("--crash-at")
                            .parse()
                            .unwrap_or_else(|_| die("bad --crash-at")),
                    )
                }
                "--crash-corrupt" => o.crash_corrupt = Some(val("--crash-corrupt")),
                "--cache" => o.cache = true,
                "--cache-bytes" => {
                    // An explicit budget implies caching.
                    o.cache = true;
                    o.cache_bytes = Some(
                        val("--cache-bytes")
                            .parse()
                            .unwrap_or_else(|_| die("bad --cache-bytes")),
                    )
                }
                "--cache-policy" => {
                    o.cache = true;
                    o.cache_policy = Some(val("--cache-policy"))
                }
                "--route-pool" => {
                    o.route_pool = Some(
                        val("--route-pool")
                            .parse()
                            .unwrap_or_else(|_| die("bad --route-pool")),
                    )
                }
                "--bench-cache" => o.bench_cache = Some(val("--bench-cache")),
                "--bench-net" => o.bench_net = Some(val("--bench-net")),
                "--listen" => o.listen = Some(val("--listen")),
                "--connect" => o.connect = Some(val("--connect")),
                "--shards" => o.shards = Some(val("--shards")),
                "--recover" => o.recover = true,
                "--shutdown" => o.shutdown = true,
                "--col-store" => o.col_store = Some(val("--col-store")),
                "--in" => o.in_dir = Some(val("--in")),
                "--report" => o.report = Some(val("--report")),
                "--budget" => {
                    o.budget = Some(
                        val("--budget")
                            .parse()
                            .unwrap_or_else(|_| die("bad --budget")),
                    )
                }
                "--queries" => o.queries = Some(val("--queries")),
                "--global-budget" => {
                    o.global_budget = Some(
                        val("--global-budget")
                            .parse()
                            .unwrap_or_else(|_| die("bad --global-budget")),
                    )
                }
                flag if flag.starts_with("--") => die(&format!("unknown flag '{flag}'")),
                file => o.files.push(file.to_string()),
            }
        }
        o
    }

    fn measure(&self) -> Measure {
        self.measure.unwrap_or(Measure::Sed)
    }

    fn budget_for(&self, n: usize) -> usize {
        match self.w {
            Some(w) => w.min(n),
            None => ((n as f64 * self.ratio.unwrap_or(0.1)).round() as usize).clamp(2, n),
        }
    }
}

fn load(path: &str, format: &Option<String>) -> Trajectory {
    let file = File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let fmt = format.clone().unwrap_or_else(|| {
        match Path::new(path).extension().and_then(|e| e.to_str()) {
            Some("plt") => "plt".into(),
            Some("txt") => "tdrive".into(),
            _ => "csv".into(),
        }
    });
    let result = match fmt.as_str() {
        "csv" => rlts::trajectory::io::read_csv(file),
        "plt" => rlts::trajectory::formats::read_geolife_plt(file),
        "tdrive" => rlts::trajectory::formats::read_tdrive(file),
        other => die(&format!("unknown format '{other}'")),
    };
    result.unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn parse_variant(s: &str) -> Variant {
    match s.to_ascii_lowercase().as_str() {
        "rlts" => Variant::Rlts,
        "rlts-skip" => Variant::RltsSkip,
        "rlts+" => Variant::RltsPlus,
        "rlts-skip+" => Variant::RltsSkipPlus,
        "rlts++" => Variant::RltsPlusPlus,
        "rlts-skip++" => Variant::RltsSkipPlusPlus,
        other => die(&format!("unknown variant '{other}'")),
    }
}

fn cmd_stats(o: &CliOpts) {
    if o.files.is_empty() {
        die("stats needs at least one file");
    }
    let data: Vec<Trajectory> = o.files.iter().map(|f| load(f, &o.format)).collect();
    println!("{}", rlts::trajectory::stats::DatasetStats::compute(&data));
}

fn cmd_train(o: &CliOpts) {
    let variant = parse_variant(o.variant.as_deref().unwrap_or("rlts"));
    let cfg = RltsConfig::paper_defaults(variant, o.measure());
    let pool: Vec<Trajectory> = if o.files.is_empty() {
        let preset = match o.synthetic.as_deref().unwrap_or("geolife") {
            "geolife" => Preset::GeolifeLike,
            "tdrive" => Preset::TDriveLike,
            "truck" => Preset::TruckLike,
            other => die(&format!("unknown synthetic preset '{other}'")),
        };
        rlts::trajgen::generate_dataset(
            preset,
            o.count.unwrap_or(30),
            o.len.unwrap_or(250),
            o.seed.unwrap_or(1),
        )
    } else {
        o.files.iter().map(|f| load(f, &o.format)).collect()
    };
    let mut tc = TrainConfig::quick(cfg);
    tc.epochs = o.epochs.unwrap_or(30);
    tc.lr = 0.02;
    tc.seed = o.seed.unwrap_or(1);
    tc.threads = o.threads.unwrap_or(0);
    tc.cache = o.cache;
    eprintln!(
        "training {} / {} on {} trajectories ...",
        variant,
        o.measure(),
        pool.len()
    );
    let report = train(&pool, &tc);
    eprintln!(
        "done: {} transitions in {:.1}s (best mean episode reward {:.4})",
        report.transitions,
        report.wall_time.as_secs_f64(),
        report
            .reward_history
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    );
    let out = o.out.as_deref().unwrap_or("policy.json");
    // `.ckpt` selects the versioned binary checkpoint format (CRC-guarded,
    // what `rlts serve` hot-swaps); anything else writes JSON.
    let bytes = if out.ends_with(".ckpt") {
        report.policy.to_checkpoint_bytes()
    } else {
        report.policy.to_json().into_bytes()
    };
    std::fs::write(out, bytes).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    eprintln!("policy written to {out}");
}

fn load_policy(o: &CliOpts, cfg: RltsConfig) -> DecisionPolicy {
    match &o.policy {
        Some(path) => {
            let p = if path.ends_with(".ckpt") {
                let bytes = std::fs::read(path)
                    .unwrap_or_else(|e| die(&format!("cannot read policy {path}: {e}")));
                TrainedPolicy::from_checkpoint_bytes(&bytes)
                    .unwrap_or_else(|e| die(&format!("cannot parse checkpoint {path}: {e}")))
            } else {
                let json = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read policy {path}: {e}")));
                TrainedPolicy::from_json(&json)
                    .unwrap_or_else(|e| die(&format!("cannot parse policy {path}: {e}")))
            };
            if p.config != cfg {
                die(&format!(
                    "policy was trained for {}/{} (k={}, j={}), requested {}/{}",
                    p.config.variant,
                    p.config.measure,
                    p.config.k,
                    p.config.j,
                    cfg.variant,
                    cfg.measure
                ));
            }
            DecisionPolicy::Learned {
                net: p.net,
                greedy: cfg.variant.is_batch(),
            }
        }
        None => {
            eprintln!("note: no --policy given; using the arg-min heuristic policy");
            DecisionPolicy::MinValue
        }
    }
}

fn simplify_with(o: &CliOpts, name: &str, pts: &[Point], w: usize) -> Vec<usize> {
    let m = o.measure();
    match name {
        "sttrace" => StTrace::new(m).run(pts, w),
        "squish" => Squish::new(m).run(pts, w),
        "squish-e" => SquishE::new(m).run(pts, w),
        "top-down" => TopDown::new(m).simplify(pts, w),
        "bottom-up" => BottomUp::new(m).simplify(pts, w),
        "bellman" => Bellman::new(m).simplify(pts, w),
        "uniform" => Uniform::new().simplify(pts, w),
        "span-search" => SpanSearch::new().simplify(pts, w),
        v @ ("rlts" | "rlts-skip" | "rlts+" | "rlts-skip+" | "rlts++" | "rlts-skip++") => {
            let cfg = RltsConfig::paper_defaults(parse_variant(v), m);
            let policy = load_policy(o, cfg);
            let seed = o.seed.unwrap_or(7);
            if cfg.variant.is_batch() {
                RltsBatch::new(cfg, policy, seed).simplify(pts, w)
            } else {
                RltsOnline::new(cfg, policy, seed).run(pts, w)
            }
        }
        other => die(&format!("unknown algorithm '{other}'")),
    }
}

fn cmd_simplify(o: &CliOpts) {
    let [file] = o.files.as_slice() else {
        die("simplify needs exactly one input file");
    };
    let traj = load(file, &o.format);
    let w = o.budget_for(traj.len());
    let algo = o.algo.as_deref().unwrap_or("rlts+");
    let kept = simplify_with(o, algo, traj.points(), w);
    let simplified = traj.select(&kept);
    let err = simplification_error(o.measure(), traj.points(), &kept, Aggregation::Max);
    eprintln!(
        "{algo}: {} -> {} points, {} error {:.4}",
        traj.len(),
        simplified.len(),
        o.measure(),
        err
    );
    match &o.out {
        Some(path) => {
            let mut f =
                File::create(path).unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
            rlts::trajectory::io::write_csv(&mut f, &simplified)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("written to {path}");
        }
        None => {
            let mut out = std::io::stdout().lock();
            rlts::trajectory::io::write_csv(&mut out, &simplified).ok();
        }
    }
}

/// Runs a small synthetic workload through every instrumented subsystem
/// (training, online + batch simplifiers, the sensornet uplink, timed
/// stages) and dumps the global metric registry. With `--out FILE` the
/// snapshot is also written as JSONL and verified to round-trip through
/// the parser.
fn cmd_metrics(o: &CliOpts) {
    use rlts::obskit;
    use rlts::sensornet::{ChannelConfig, FleetSim, SensorConfig};

    let reg = obskit::global();
    let seed = o.seed.unwrap_or(7);
    let count = o.count.unwrap_or(4);
    let len = o.len.unwrap_or(60);
    let measure = o.measure();
    let pool = rlts::trajgen::generate_dataset(Preset::GeolifeLike, count, len, seed);

    // Stage 1: a short training run (train.* metrics).
    eprintln!("[metrics] training ...");
    let cfg = RltsConfig::paper_defaults(Variant::Rlts, measure);
    let mut tc = TrainConfig::quick(cfg);
    tc.epochs = o.epochs.unwrap_or(4);
    tc.seed = seed;
    tc.threads = o.threads.unwrap_or(0);
    let report = {
        let _span = reg.span_with("bench.experiment.seconds", &[("cmd", "metrics-train")]);
        train(&pool, &tc)
    };

    // Stage 2: simplifier evaluations (simplify.* and core.* metrics).
    eprintln!("[metrics] simplifying ...");
    {
        let _span = reg.span_with("bench.experiment.seconds", &[("cmd", "metrics-simplify")]);
        let mut learned = RltsOnline::new(
            cfg,
            DecisionPolicy::Learned {
                net: report.policy.net,
                greedy: false,
            },
            seed,
        );
        let batch_cfg = RltsConfig::paper_defaults(Variant::RltsPlus, measure);
        let batch = RltsBatch::new(batch_cfg, DecisionPolicy::MinValue, seed);
        for t in &pool {
            let w = o.budget_for(t.len());
            learned.run(t.points(), w);
            Squish::new(measure).run(t.points(), w);
            StTrace::new(measure).run(t.points(), w);
            batch.simplify(t.points(), w);
        }
    }

    // Stage 3: a lossy-uplink fleet sweep (sensornet.* metrics).
    eprintln!("[metrics] loss sweep ...");
    {
        let _span = reg.span_with("bench.experiment.seconds", &[("cmd", "metrics-loss-sweep")]);
        let sensor_cfg = SensorConfig {
            buffer: 8,
            flush_points: 16,
            ..Default::default()
        };
        let channel = ChannelConfig {
            drop: 0.0,
            duplicate: 0.05,
            reorder: 0.05,
            corrupt: 0.01,
            reorder_depth: 3,
            seed,
        };
        FleetSim::new(sensor_cfg).with_channel(channel).loss_sweep(
            &pool,
            |m| Box::new(Squish::new(m)),
            measure,
            &[0.0, 0.1],
        );
    }

    let snap = reg.snapshot();
    print!("{}", obskit::render_table(&snap));
    for subsystem in ["train", "simplify", "core", "sensornet", "bench"] {
        let covered = snap
            .samples
            .iter()
            .any(|s| s.id.name().starts_with(&format!("{subsystem}.")));
        eprintln!(
            "[metrics] subsystem {subsystem:<9} {}",
            if covered { "covered" } else { "MISSING" }
        );
    }
    if let Some(path) = &o.out {
        let jsonl = obskit::to_jsonl(&snap);
        std::fs::write(path, &jsonl).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        match obskit::from_jsonl(&jsonl) {
            Ok(back) if back == snap => {
                eprintln!(
                    "[metrics] {} samples written to {path} (round-trip verified)",
                    snap.samples.len()
                );
            }
            Ok(_) => die("JSONL round-trip mismatch"),
            Err(e) => die(&format!("JSONL round-trip failed: {e}")),
        }
    }
}

/// Runs the synthetic many-tenant soak: hundreds of concurrent sessions
/// fed by trajgen sources through a lossy sensornet uplink, with an
/// optional mid-soak policy hot-swap. Exits non-zero if any soak
/// invariant is violated or the `serve.*` metric family is missing.
fn cmd_serve(o: &CliOpts) {
    use rlts::obskit;
    use rlts::trajserve::{run_soak, run_soak_on, ServeBackend, ServeClient};
    use std::time::Duration;

    if o.listen.is_some() && !o.soak {
        return cmd_serve_listen(o);
    }
    if !o.soak {
        die(
            "serve needs a mode: rlts serve --soak [options] (synthetic soak) \
             or rlts serve --listen ADDR [options] (network shard)",
        );
    }
    if (o.crash_at.is_some() || o.crash_corrupt.is_some()) && o.journal_dir.is_none() {
        die("--crash-at / --crash-corrupt need --journal-dir");
    }
    if o.bench_cache.is_some() && o.journal_dir.is_some() {
        die(
            "--bench-cache runs the workload twice and would reuse the journal; drop --journal-dir",
        );
    }
    if o.bench_net.is_some() && o.journal_dir.is_some() {
        die("--bench-net runs the workload twice and would reuse the journal; drop --journal-dir");
    }
    if o.bench_net.is_some() && o.bench_cache.is_some() {
        die("--bench-net and --bench-cache are separate benchmarks; pick one");
    }
    if o.connect.is_some() {
        if o.crash_at.is_some() || o.crash_corrupt.is_some() {
            die("--crash-at / --crash-corrupt inject crashes into an in-process service; with --connect, kill -9 the shard process instead");
        }
        if o.bench_cache.is_some() || o.bench_net.is_some() {
            die("--bench-cache / --bench-net manage their own service; drop --connect");
        }
        if o.journal_dir.is_some() {
            die("with --connect the journal lives with the remote shard; pass --journal-dir to `rlts serve --listen` instead");
        }
    }
    if o.shutdown && o.connect.is_none() {
        die("--shutdown needs --connect");
    }
    let cfg = soak_config_from(o);
    eprintln!(
        "[serve] soak: {} sessions x {} points across {} tenants (drop {:.0}%{}{})",
        cfg.sessions,
        cfg.points_per_session,
        cfg.tenants,
        cfg.drop * 100.0,
        if cfg.swap_mid {
            ", mid-soak hot-swap"
        } else {
            ""
        },
        match &cfg.cache {
            Some(c) => format!(", cache {} x {} B/tenant", c.policy, c.tenant_bytes),
            None => String::new(),
        }
    );
    let report = if let Some(path) = &o.bench_cache {
        run_cache_bench(&cfg, path)
    } else if let Some(path) = &o.bench_net {
        run_net_bench(&cfg, path)
    } else if let Some(addr) = &o.connect {
        eprintln!("[serve] driving the soak over {addr} ...");
        let client = ServeClient::connect(addr, Duration::from_secs(10))
            .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
        run_soak_on(&cfg, ServeBackend::Remote(Box::new(client)))
    } else {
        run_soak(&cfg)
    };
    eprintln!(
        "[serve] {} outputs in {} ticks: {} closed, {} evicted (peak {} active, {} buffered pts)",
        report.delivered,
        report.ticks,
        report.closed,
        report.evicted,
        report.peak_active,
        report.peak_buffered
    );
    eprintln!(
        "[serve] {} points fed, {} shed at admission{}",
        report.points_fed,
        report.points_shed,
        match report.swapped_to {
            Some(v) => format!(", policy swapped to v{v}"),
            None => String::new(),
        }
    );
    if let Some(wc) = &report.window_cache {
        eprintln!(
            "[serve] window memo: {} hits / {} misses ({:.1}% hit rate), \
             {} evictions, {} B resident; mean tick {:.1} us",
            wc.hits,
            wc.misses,
            wc.hit_rate() * 100.0,
            wc.evictions,
            wc.resident_bytes,
            report.mean_tick_micros()
        );
    }
    if let Some(fc) = &report.forward_cache {
        eprintln!(
            "[serve] forward cache: {} hits / {} misses ({:.1}% hit rate)",
            fc.hits,
            fc.misses,
            fc.hit_rate() * 100.0
        );
    }
    if o.crash_at.is_some() && report.crashes == 0 {
        // A crash point past the end of the run would make every
        // downstream comparison vacuously pass — refuse instead.
        die(&format!(
            "--crash-at {} was never reached: the soak ended at tick {}",
            o.crash_at.unwrap_or(0),
            report.ticks
        ));
    }
    if report.crashes > 0 {
        // Recovery details go to stderr so --out stays byte-comparable
        // against an uncrashed reference run.
        eprintln!(
            "[serve] crash at tick {}: recovered to tick {} ({} records replayed, \
             {} sessions restored, {} records / {} bytes quarantined{})",
            o.crash_at.unwrap_or(0),
            report.recovered_tick,
            report.records_replayed,
            report.sessions_restored,
            report.quarantined_records,
            report.quarantined_bytes,
            match cfg.crash_corrupt {
                Some(m) => format!(", {m} corruption injected"),
                None => String::new(),
            }
        );
    }

    eprintln!(
        "[serve] {:.1} sessions/s end to end; append p99 {:.1} us, mean {:.1} us",
        report.sessions_per_sec(),
        report.append_p99_nanos as f64 / 1_000.0,
        report.append_mean_nanos as f64 / 1_000.0
    );

    let snap = obskit::global().snapshot();
    // With --connect the service runs in another process, so its serve.*
    // family is invisible here; the driver-side contract is the net.*
    // client metrics instead.
    let mut families = if o.connect.is_some() {
        vec!["net."]
    } else {
        vec!["serve."]
    };
    if o.connect.is_none() {
        if cfg.cache.is_some() || o.bench_cache.is_some() {
            families.push("cache.");
        }
        if cfg.journal_dir.is_some() {
            families.push("serve.journal.");
        }
        if report.crashes > 0 {
            families.push("serve.recovery.");
        }
        if o.bench_net.is_some() {
            families.push("net.");
        }
    }
    for family in families {
        let covered = snap.samples.iter().any(|s| s.id.name().starts_with(family));
        eprintln!(
            "[serve] metric family {family:<15} {}",
            if covered { "covered" } else { "MISSING" }
        );
        if !covered {
            die(&format!("no {family}* metrics recorded during the soak"));
        }
    }
    if let Err(e) = report.verify() {
        die(&format!("soak verification failed: {e}"));
    }
    if let Some(path) = &o.out {
        let artifact = render_artifact(&report);
        std::fs::write(path, &artifact)
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!(
            "[serve] {} outputs written to {path} (logical clock only)",
            report.outputs.len()
        );
    }
    if o.shutdown {
        // Fresh connection: the soak backend owned (and dropped) the
        // driving client.
        let addr = o.connect.as_deref().unwrap_or_default();
        let client = ServeClient::connect(addr, Duration::from_secs(10))
            .unwrap_or_else(|e| die(&format!("cannot reconnect to {addr} for shutdown: {e}")));
        client
            .shutdown_server()
            .unwrap_or_else(|e| die(&format!("remote shutdown failed: {e}")));
        eprintln!("[serve] remote server at {addr} asked to shut down");
    }
    println!(
        "soak ok: {} sessions, {} evicted, {} points shed, policy swap {}",
        report.delivered,
        report.evicted,
        report.points_shed,
        report
            .swapped_to
            .map(|v| format!("-> v{v}"))
            .unwrap_or_else(|| "off".into())
    );
}

/// Builds the soak workload description shared by the in-process soak,
/// the `--connect` remote driver, and the `--listen` shard server (which
/// derives its [`ServeConfig`](rlts::trajserve::ServeConfig) from the
/// same flags so driver and shard agree on admission ceilings).
fn soak_config_from(o: &CliOpts) -> rlts::trajserve::SoakConfig {
    use rlts::trajserve::{CorruptMode, ServeConfig, SoakConfig};

    let crash_corrupt = o.crash_corrupt.as_deref().map(|s| {
        s.parse::<CorruptMode>()
            .unwrap_or_else(|e| die(&format!("bad --crash-corrupt: {e}")))
    });
    let cache = o.cache.then(|| {
        let mut c = rlts::trajserve::CacheConfig::default();
        if let Some(bytes) = o.cache_bytes {
            c.tenant_bytes = bytes.max(1);
        }
        if let Some(policy) = &o.cache_policy {
            c.policy = policy
                .parse()
                .unwrap_or_else(|e| die(&format!("bad --cache-policy: {e}")));
        }
        c
    });
    SoakConfig {
        sessions: o.sessions.unwrap_or(500),
        tenants: o.tenants.unwrap_or(10).max(1),
        points_per_session: o.len.unwrap_or(120),
        w: o.w.unwrap_or(10),
        drop: o.drop.unwrap_or(0.05),
        swap_mid: o.swap_mid,
        journal_dir: o.journal_dir.as_ref().map(std::path::PathBuf::from),
        group_commit: o.group_commit.unwrap_or(1),
        snapshot_every: o.snapshot_every.unwrap_or(64),
        crash_at: o.crash_at,
        crash_corrupt,
        route_pool: o.route_pool.unwrap_or(8),
        cache,
        serve: ServeConfig {
            threads: o.threads.unwrap_or(0),
            idle_ttl: o.ttl.unwrap_or(12),
            seed: o.seed.unwrap_or(0xC0FFEE),
            col_store: o.col_store.as_ref().map(std::path::PathBuf::from),
            budget: o.global_budget.map(rlts::trajserve::BudgetConfig::pool),
            ..ServeConfig::default()
        },
    }
}

/// `rlts serve --listen ADDR`: run one shard as a blocking TCP server
/// speaking the length-prefixed wire protocol of DESIGN.md §15. The
/// service config is derived from the same soak sizing flags the driver
/// uses, so admission decisions match an in-process run. With
/// `--journal-dir` the shard journals every op; `--recover` rebuilds
/// state from that journal after a crash before listening again.
fn cmd_serve_listen(o: &CliOpts) {
    use rlts::trajserve::{serve_config, serve_forever, TrajServe};
    use std::sync::Arc;

    if o.crash_at.is_some() || o.crash_corrupt.is_some() {
        die("--crash-at / --crash-corrupt drive the in-process soak; kill -9 the shard process instead");
    }
    if o.recover && o.journal_dir.is_none() {
        die("--recover needs --journal-dir");
    }
    let listen = o.listen.as_deref().unwrap_or_default();
    let serve_cfg = serve_config(&soak_config_from(o));
    let serve = if o.recover {
        let (serve, rec) =
            TrajServe::recover(serve_cfg).unwrap_or_else(|e| die(&format!("recovery failed: {e}")));
        eprintln!(
            "[serve] recovered to tick {} ({} records replayed, {} sessions restored)",
            rec.recovered_tick, rec.records_replayed, rec.sessions_restored
        );
        serve
    } else {
        TrajServe::new(serve_cfg)
    };
    eprintln!("[serve] shard listening on {listen}");
    serve_forever(Arc::new(serve), listen)
        .unwrap_or_else(|e| die(&format!("cannot serve on {listen}: {e}")));
}

/// `rlts route --listen ADDR --shards A,B,...`: stand up the shard
/// router. Sessions map to shards by `session_id % N`; a dead shard
/// degrades only its residue class while the router buffers its ops and
/// replays them when the shard comes back (DESIGN.md §15).
fn cmd_route(o: &CliOpts) {
    use rlts::trajserve::{serve_forever, Router, RouterConfig};
    use std::sync::Arc;

    let Some(listen) = o.listen.as_deref() else {
        die("route needs --listen ADDR");
    };
    let Some(shards) = o.shards.as_deref() else {
        die("route needs --shards ADDR,ADDR,...");
    };
    let shards: Vec<String> = shards
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        die("--shards needs at least one address");
    }
    let router = Router::connect(RouterConfig {
        shards,
        ..RouterConfig::default()
    })
    .unwrap_or_else(|e| die(&format!("cannot reach shards: {e}")));
    for h in router.health() {
        eprintln!(
            "[route] shard {} at {}: {}",
            h.index,
            h.addr,
            if h.connected { "up" } else { "down" }
        );
    }
    eprintln!("[route] listening on {listen}");
    serve_forever(Arc::new(router), listen)
        .unwrap_or_else(|e| die(&format!("cannot serve on {listen}: {e}")));
}

/// `rlts resimplify`: stream a columnar store (`rlts serve --col-store`)
/// through a batch simplifier and write a mirrored store whose entries
/// are no worse than the stored online outputs under the guard measure
/// (DESIGN.md §16).
fn cmd_resimplify(o: &CliOpts) {
    use rlts::resimplify::{run, ResimplifyConfig};

    let Some(input) = o.in_dir.as_deref() else {
        die("resimplify needs --in DIR (a store written by `rlts serve --col-store`)");
    };
    let Some(output) = o.out.as_deref() else {
        die("resimplify needs --out DIR");
    };
    let cfg = ResimplifyConfig {
        input: input.into(),
        output: output.into(),
        algo: o.algo.clone().unwrap_or_else(|| "bottom-up".into()),
        measure: o.measure(),
        threads: o.threads.unwrap_or(0),
        queries: o.queries.clone().unwrap_or_default(),
    };
    let report = run(&cfg).unwrap_or_else(|e| die(&e));
    let json = report.to_json();
    if let Some(path) = &o.report {
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    print!("{json}");
    eprintln!(
        "[resimplify] {} segments in, {} out ({} skipped); {} entries: \
         {} adopted, {} retained, {} kept-only, {} quarantined",
        report.segments_read,
        report.segments_written,
        report.segments_skipped,
        report.entries,
        report.adopted,
        report.retained,
        report.kept_only,
        report.entries_quarantined
    );
}

/// `rlts allocate`: redistribute one global point budget across every
/// entry of a columnar store by marginal query-accuracy loss, guarded to
/// be no worse than the uniform split on the query workload
/// (DESIGN.md §17).
fn cmd_allocate(o: &CliOpts) {
    use rlts::allocate::{run, AllocateCliConfig};

    let Some(input) = o.in_dir.as_deref() else {
        die("allocate needs --in DIR (a store written by `rlts serve --col-store`)");
    };
    let Some(budget) = o.budget else {
        die("allocate needs --budget N (global kept-point budget)");
    };
    let cfg = AllocateCliConfig {
        input: input.into(),
        output: o.out.as_deref().map(Into::into),
        budget,
        queries: o.queries.clone().unwrap_or_default(),
        measure: o.measure(),
        threads: o.threads.unwrap_or(0),
    };
    let report = run(&cfg).unwrap_or_else(|e| die(&e));
    let json = report.to_json();
    if let Some(path) = &o.report {
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    print!("{json}");
    eprintln!(
        "[allocate] {} entries over {} segments ({} skipped, {} quarantined); \
         adopted {} split: {} of {} points kept, per-entry budgets {}..{}",
        report.entries,
        report.segments_read,
        report.segments_skipped,
        report.entries_quarantined,
        if report.adopted_collective {
            "collective"
        } else {
            "uniform"
        },
        report.target_total,
        report.base_points,
        report.budget_min,
        report.budget_max
    );
}

/// Renders delivered soak outputs as the deterministic artifact text:
/// logical clock only, `f64`s in shortest-round-trip (lossless) form, so
/// two runs of the same workload are byte-comparable.
fn render_artifact(report: &rlts::trajserve::SoakReport) -> String {
    use std::fmt::Write as _;
    let mut artifact = String::new();
    for out in &report.outputs {
        let _ = write!(
            artifact,
            "id={} tenant={} reason={:?} ver={} degraded={} observed={} tick={} pts=",
            out.id.0,
            out.tenant.0,
            out.reason,
            out.policy_version,
            out.degraded,
            out.observed,
            out.delivered_at
        );
        for (i, p) in out.simplified.iter().enumerate() {
            let sep = if i == 0 { "" } else { ";" };
            let _ = write!(artifact, "{sep}{:?}:{:?}:{:?}", p.t, p.x, p.y);
        }
        artifact.push('\n');
    }
    artifact
}

/// `--bench-cache`: runs the identical workload cache-off then cache-on,
/// dies unless the delivered artifacts match byte for byte, writes the
/// hit-rate / per-tick-latency comparison as JSON, and hands the cached
/// report back for the normal verification path.
fn run_cache_bench(cfg: &rlts::trajserve::SoakConfig, path: &str) -> rlts::trajserve::SoakReport {
    use rlts::trajserve::{run_soak, SoakConfig};

    let plain_cfg = SoakConfig {
        cache: None,
        ..cfg.clone()
    };
    let cache_cfg = cfg.cache.clone().unwrap_or_default();
    let cached_cfg = SoakConfig {
        cache: Some(cache_cfg.clone()),
        ..cfg.clone()
    };
    eprintln!("[serve] bench: cache-off reference run ...");
    let plain = run_soak(&plain_cfg);
    eprintln!("[serve] bench: cache-on run ...");
    let cached = run_soak(&cached_cfg);
    if render_artifact(&plain) != render_artifact(&cached) {
        die("cache-on outputs differ from cache-off (caching must be transparent)");
    }
    let wc = cached.window_cache.unwrap_or_default();
    let fc = cached.forward_cache.unwrap_or_default();
    let speedup = if cached.mean_tick_micros() > 0.0 {
        plain.mean_tick_micros() / cached.mean_tick_micros()
    } else {
        1.0
    };
    let json = format!(
        "{{\n\
         \x20 \"workload\": {{\n\
         \x20   \"sessions\": {sessions},\n\
         \x20   \"tenants\": {tenants},\n\
         \x20   \"points_per_session\": {pps},\n\
         \x20   \"drop\": {drop},\n\
         \x20   \"route_pool\": {route_pool},\n\
         \x20   \"threads\": {threads},\n\
         \x20   \"seed\": {seed}\n\
         \x20 }},\n\
         \x20 \"uncached\": {{ \"mean_tick_micros\": {plain_us:.3}, \"ticks_timed\": {plain_ticks} }},\n\
         \x20 \"cached\": {{\n\
         \x20   \"policy\": \"{policy}\",\n\
         \x20   \"tenant_bytes\": {tenant_bytes},\n\
         \x20   \"mean_tick_micros\": {cached_us:.3},\n\
         \x20   \"ticks_timed\": {cached_ticks},\n\
         \x20   \"window\": {{ \"hits\": {whits}, \"misses\": {wmisses}, \"hit_rate\": {wrate:.4}, \"evictions\": {wevict}, \"inserts\": {winsert} }},\n\
         \x20   \"forward\": {{ \"hits\": {fhits}, \"misses\": {fmisses}, \"hit_rate\": {frate:.4} }}\n\
         \x20 }},\n\
         \x20 \"tick_speedup\": {speedup:.3},\n\
         \x20 \"outputs_identical\": true\n\
         }}\n",
        sessions = cfg.sessions,
        tenants = cfg.tenants,
        pps = cfg.points_per_session,
        drop = cfg.drop,
        route_pool = cfg.route_pool,
        threads = cfg.serve.threads,
        seed = cfg.serve.seed,
        plain_us = plain.mean_tick_micros(),
        plain_ticks = plain.ticks_timed,
        policy = cache_cfg.policy,
        tenant_bytes = cache_cfg.tenant_bytes,
        cached_us = cached.mean_tick_micros(),
        cached_ticks = cached.ticks_timed,
        whits = wc.hits,
        wmisses = wc.misses,
        wrate = wc.hit_rate(),
        wevict = wc.evictions,
        winsert = wc.inserts,
        fhits = fc.hits,
        fmisses = fc.misses,
        frate = fc.hit_rate(),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!(
        "[serve] bench: {:.1}% window hit rate, tick {:.1} -> {:.1} us ({speedup:.2}x); written to {path}",
        wc.hit_rate() * 100.0,
        plain.mean_tick_micros(),
        cached.mean_tick_micros()
    );
    cached
}

/// `--bench-net`: runs the identical workload in-process then against a
/// loopback TCP server, dies unless the delivered artifacts match byte
/// for byte, writes the throughput / append-latency comparison as JSON,
/// and hands the networked report back for the normal verification path.
fn run_net_bench(cfg: &rlts::trajserve::SoakConfig, path: &str) -> rlts::trajserve::SoakReport {
    use rlts::trajserve::{
        run_soak, run_soak_on, serve_config, NetServer, ServeBackend, ServeClient, TrajServe,
    };
    use std::sync::Arc;
    use std::time::Duration;

    eprintln!("[serve] bench: in-process reference run ...");
    let local = run_soak(cfg);
    eprintln!("[serve] bench: loopback networked run ...");
    let serve = TrajServe::new(serve_config(cfg));
    let server = NetServer::spawn(Arc::new(serve), "127.0.0.1:0")
        .unwrap_or_else(|e| die(&format!("cannot start loopback server: {e}")));
    let client = ServeClient::connect(&server.addr().to_string(), Duration::from_secs(10))
        .unwrap_or_else(|e| die(&format!("cannot connect to loopback server: {e}")));
    let net = run_soak_on(cfg, ServeBackend::Remote(Box::new(client)));
    server.stop();
    if render_artifact(&local) != render_artifact(&net) {
        die("networked outputs differ from in-process (the wire protocol must be transparent)");
    }
    let json = format!(
        "{{\n\
         \x20 \"workload\": {{\n\
         \x20   \"sessions\": {sessions},\n\
         \x20   \"tenants\": {tenants},\n\
         \x20   \"points_per_session\": {pps},\n\
         \x20   \"drop\": {drop},\n\
         \x20   \"route_pool\": {route_pool},\n\
         \x20   \"threads\": {threads},\n\
         \x20   \"seed\": {seed}\n\
         \x20 }},\n\
         \x20 \"in_process\": {{ \"sessions_per_sec\": {lsps:.1}, \"append_p99_micros\": {lp99:.3}, \"append_mean_micros\": {lmean:.3}, \"mean_tick_micros\": {ltick:.3} }},\n\
         \x20 \"loopback_tcp\": {{ \"sessions_per_sec\": {nsps:.1}, \"append_p99_micros\": {np99:.3}, \"append_mean_micros\": {nmean:.3}, \"mean_tick_micros\": {ntick:.3} }},\n\
         \x20 \"outputs_identical\": true,\n\
         \x20 \"caveats\": \"single machine, loopback TCP, one synchronous driver connection per run; measures framing + syscall overhead, not datacenter network latency or fan-out\"\n\
         }}\n",
        sessions = cfg.sessions,
        tenants = cfg.tenants,
        pps = cfg.points_per_session,
        drop = cfg.drop,
        route_pool = cfg.route_pool,
        threads = cfg.serve.threads,
        seed = cfg.serve.seed,
        lsps = local.sessions_per_sec(),
        lp99 = local.append_p99_nanos as f64 / 1_000.0,
        lmean = local.append_mean_nanos as f64 / 1_000.0,
        ltick = local.mean_tick_micros(),
        nsps = net.sessions_per_sec(),
        np99 = net.append_p99_nanos as f64 / 1_000.0,
        nmean = net.append_mean_nanos as f64 / 1_000.0,
        ntick = net.mean_tick_micros(),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!(
        "[serve] bench: {:.1} sessions/s in-process vs {:.1} over loopback \
         (append p99 {:.1} -> {:.1} us); written to {path}",
        local.sessions_per_sec(),
        net.sessions_per_sec(),
        local.append_p99_nanos as f64 / 1_000.0,
        net.append_p99_nanos as f64 / 1_000.0
    );
    net
}

fn cmd_eval(o: &CliOpts) {
    if o.files.is_empty() {
        die("eval needs at least one file");
    }
    let data: Vec<Trajectory> = o.files.iter().map(|f| load(f, &o.format)).collect();
    let algos = [
        "sttrace",
        "squish",
        "squish-e",
        "top-down",
        "bottom-up",
        "uniform",
    ];
    println!(
        "{:<10} {:>12} ({} over {} trajectories)",
        "algorithm",
        "mean error",
        o.measure(),
        data.len()
    );
    for algo in algos {
        let mut sum = 0.0;
        for t in &data {
            let w = o.budget_for(t.len());
            let kept = simplify_with(o, algo, t.points(), w);
            sum += simplification_error(o.measure(), t.points(), &kept, Aggregation::Max);
        }
        println!("{algo:<10} {:>12.4}", sum / data.len() as f64);
    }
    if o.policy.is_some() {
        for algo in ["rlts", "rlts+"] {
            let mut sum = 0.0;
            for t in &data {
                let w = o.budget_for(t.len());
                let kept = simplify_with(o, algo, t.points(), w);
                sum += simplification_error(o.measure(), t.points(), &kept, Aggregation::Max);
            }
            println!("{algo:<10} {:>12.4}", sum / data.len() as f64);
        }
    }
}
